// Package admit is the long-lived admission-control engine: it holds the
// live TDMA schedule of a serving mesh and answers a stream of Admit/Release
// calls by incremental repair instead of from-scratch re-planning. Three
// tiers, cheapest first:
//
//   - Fast: pure first-fit placement of the new flow's slots into the free
//     space of the current schedule window, checked against a per-link
//     interval index — O(conflict degree), no solver. Fill-in only: the
//     window never grows on this tier, so every fastpath admit keeps the
//     incumbent window exact.
//   - Warm: re-solve of a persistent, mutation-driven ILP model
//     (schedule.Incremental) hinted at the incumbent window — typically one
//     integer program of a few dual pivots. The tier also keeps an exact
//     memo of solved aggregate demand vectors: serving churn revisits the
//     same states constantly (a call arrives, holds, departs, and the mesh
//     is back where it was), and a revisit replays the remembered exact
//     schedule and verdict without touching the solver at all.
//   - Cold: the model's support set does not cover the new demand; rebuild
//     it over the widened support and solve. Support only ever grows, so
//     cold admits become rarer as the engine warms up.
//
// Rejections are always solver verdicts (the fast tier only admits), so the
// engine's accept/reject answers match a cold schedule.MinSlots re-plan —
// the differential tests pin this. In zoned mode (city scale) the engine
// instead keeps one persistent model per spatial zone (internal/partition)
// and re-solves only the zones an admission touches; zoned verdicts are
// conservative, as for the partitioned planner.
package admit

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"wimesh/internal/conflict"
	"wimesh/internal/milp"
	"wimesh/internal/obs"
	"wimesh/internal/partition"
	"wimesh/internal/schedule"
	"wimesh/internal/tdma"
	"wimesh/internal/topology"
)

// ErrUnknownFlow reports a Release of a flow ID the engine is not serving.
var ErrUnknownFlow = errors.New("admit: unknown flow")

// ErrBadFlow reports a malformed admission request.
var ErrBadFlow = errors.New("admit: bad flow")

// Tier identifies which repair tier decided an admission.
type Tier int

const (
	// TierNone marks decisions that needed no tier: structurally impossible
	// requests (per-link demand beyond the window cap) rejected up front.
	TierNone Tier = iota
	// TierFast is first-fit placement into the current window, no solver.
	TierFast
	// TierWarm is a re-solve of the persistent incremental ILP model.
	TierWarm
	// TierCold is a model rebuild (support growth) followed by a solve.
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierFast:
		return "fast"
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	default:
		return "none"
	}
}

// FlowID names an admitted flow for later release.
type FlowID string

// Flow is an admission request: Slots[i] data slots per frame on link
// Path[i]. A link appearing twice contributes the sum of its entries.
// Class is the flow's 802.16 service class; the zero value (best effort)
// reproduces the engine's class-oblivious behavior exactly.
type Flow struct {
	ID    FlowID
	Path  []topology.LinkID
	Slots []int
	Class Class
}

// demand folds the flow into a per-link slot map.
func (f Flow) demand() map[topology.LinkID]int {
	d := make(map[topology.LinkID]int, len(f.Path))
	for i, l := range f.Path {
		d[l] += f.Slots[i]
	}
	return d
}

// Decision reports the outcome of one Admit call.
type Decision struct {
	Admitted bool
	Tier     Tier
	// Window is the schedule makespan in slots after the call.
	Window int
	// Solved and Pivots count the integer programs and simplex pivots the
	// decision spent (zero on the fast tier).
	Solved int
	Pivots int
	// Latency is the in-engine decision time.
	Latency time.Duration
	// Preempted lists the flows evicted to make this admission possible
	// (Config.Preempt). Non-empty only on admitted guaranteed-class
	// decisions; the evicted flows are no longer served and must not be
	// released again.
	Preempted []FlowID
}

// Stats is a snapshot of the engine's lifetime tallies.
type Stats struct {
	Admitted, Rejected    uint64
	Fast, Warm, Cold      uint64
	Releases, Compactions uint64
	ZoneGreedy            uint64
	WarmPivots            uint64
	// Batched counts admissions decided jointly: calls whose verdict was
	// recovered from a shared solve of a batch of two or more arrivals.
	Batched uint64
	// Defrags counts background solver-driven re-packs swapped into the live
	// schedule; DefragSlots is the total window shrinkage they bought.
	Defrags     uint64
	DefragSlots uint64
	// MemoHits counts warm admissions answered from the exact-solve memo.
	MemoHits uint64
	// Satisficed counts admissions decided by the satisficing fallback: the
	// exact min-window search blew its budget and a single probe at the
	// window cap found a feasible (not necessarily minimal) schedule.
	Satisficed uint64
	// BudgetRejected counts rejections issued because a solve exhausted its
	// branch-and-bound budget — with Config.BudgetRejects, after the
	// satisficing fallback also failed to decide in time.
	BudgetRejected uint64
	// PreemptAttempts counts guaranteed-class rejections that entered the
	// preemption search; PreemptAdmits the ones it converted to admissions;
	// PreemptEvicted the BE/nrtPS flows evicted across those admissions.
	PreemptAttempts uint64
	PreemptAdmits   uint64
	PreemptEvicted  uint64
}

// Config parameterizes an Engine.
type Config struct {
	// Graph is the link conflict graph; Frame the TDMA frame layout.
	Graph *conflict.Graph
	Frame tdma.FrameConfig
	// MaxWindow caps the schedule makespan in slots (0 = all data slots).
	// Admissions that cannot fit within it are rejected.
	MaxWindow int
	// UGSDeadline, when positive, requires every link's aggregate UGS slots
	// to complete within the first UGSDeadline slots of the frame — the
	// periodic-grant region of the 802.16 frame map. RtPSWindow, when
	// positive, requires each link's UGS+rtPS slots to complete within the
	// first RtPSWindow slots (at least UGSDeadline when both are set).
	// Zero disables the deadline machinery entirely; classes then only
	// order preemption, and the engine's verdicts and schedules are
	// byte-identical to the class-oblivious ones.
	UGSDeadline int
	RtPSWindow  int
	// Preempt lets a guaranteed-class (UGS/rtPS) arrival that fails every
	// repair tier evict the cheapest conflict-relevant set of BE/nrtPS
	// flows and retry. Evictions are reported in Decision.Preempted and the
	// evicted flows are no longer served. Non-guaranteed arrivals never
	// preempt, and guaranteed flows are never victims. Requires the serial
	// engine (not Sharded): preemption retries mutate and roll back the
	// whole schedule under one lock.
	Preempt bool
	// MaxPreempt caps the evictions spent on one admission (0 = no cap).
	MaxPreempt int
	// MILP configures the branch-and-bound solves. Admit overrides
	// Interrupt with the call context's Done channel.
	MILP milp.Options
	// BudgetRejects trades exactness for bounded decision latency when a
	// solve exhausts its branch-and-bound budget (milp.ErrLimit with a live
	// context). The blown exact search — almost always stuck in an
	// infeasibility proof at the incumbent window — first falls back to a
	// single feasibility probe at the window cap: admission needs *a*
	// window within the cap, not the minimum, and the loose probe is cheap
	// exactly where the tight proof is hard. A feasible witness admits the
	// call with its window marked unproven; only if the fallback also blows
	// its budget is the call rejected conservatively. Differential tests
	// leave this off so a blown budget fails loudly.
	BudgetRejects bool
	// Zoned switches to per-zone incremental models over a spatial
	// decomposition of ZoneSize meters (0 = automatic): city-scale mode.
	Zoned    bool
	ZoneSize float64
	// Sharded switches the zoned engine from one global lock to per-zone
	// locking: an admission locks only the zones its demand delta touches
	// (in ascending zone-ID order, so concurrent admissions cannot
	// deadlock) plus a short critical section on the shared stitch and
	// occupancy state, letting admissions in disjoint zones solve truly in
	// parallel. Requires Zoned. Verdicts stay the zoned engine's
	// conservative ones, but their arrival order under concurrency is
	// scheduler-dependent; serial replay needs Sharded off.
	Sharded bool
	// MaxZonePairs gates zone ILP size as in internal/partition; larger
	// zones fall back to greedy packing (0 = partition default).
	MaxZonePairs int
	// CompactEvery re-packs the schedule after that many releases to
	// reclaim fragmented slots (0 = 64, negative = never).
	CompactEvery int
	// MemoSize bounds the exact-solve memo of the monolithic warm tier
	// (0 = 256, negative = disabled). Entries are keyed by the full
	// aggregate demand vector, so a hit is always exact.
	MemoSize int
	// Registry receives admit.* counters and the decision-latency
	// histogram; nil disables metrics.
	Registry *obs.Registry
}

const (
	defaultCompactEvery = 64
	defaultMemoSize     = 256
)

// memoEntry is one remembered exact verdict: the minimum window and a
// witness schedule for a specific aggregate demand vector, or its proven
// infeasibility.
type memoEntry struct {
	feasible bool
	win      int
	assigns  []tdma.Assignment
}

// Engine is the long-lived admission engine. All methods are safe for
// concurrent use. In the default configuration admissions serialize on one
// internal lock (the schedule and the persistent solver model are single
// live objects); with Config.Sharded the zoned engine instead locks only the
// zones a decision touches, so the solver work of admissions in disjoint
// zones runs in parallel and just the stitch — commit of the shared
// schedule, occupancy index and tallies — serializes on e.mu.
type Engine struct {
	cfg     Config
	maxWin  int
	sharded bool

	// mu is the stitch lock: it guards the live schedule, the occupancy
	// index, the aggregate demand, the flow table, the tallies and the memo.
	// In sharded mode the solver phase of a decision runs outside it, under
	// the per-zone locks below.
	mu     sync.Mutex
	sched  *tdma.Schedule
	occ    [][][2]int // per-link [start,end) intervals, sorted by start
	demand map[topology.LinkID]int
	flows  map[FlowID]Flow
	win    int
	// cls tracks, per link, the aggregate guaranteed-class slots:
	// [0] UGS, [1] rtPS. Maintained only when classed() — a deadline is
	// configured — and guarded by e.mu like demand.
	cls map[topology.LinkID][2]int
	// gen counts committed mutations of the live schedule (admit, release,
	// compaction, defrag swap). Background defragmentation snapshots it and
	// discards its candidate when the schedule moved underneath the solve.
	gen uint64
	// pending reserves flow IDs whose sharded admission is mid-solve, so a
	// concurrent duplicate of the same ID fails instead of racing.
	pending map[FlowID]bool
	// Monolithic mode: one persistent model over a grow-only support set.
	inc     *schedule.Incremental
	support []topology.LinkID
	// solverDirty is set by Release: the incumbent window is no longer a
	// proven minimum, so warm solves may not use it as a lower bound.
	solverDirty bool
	releases    int
	// Zoned mode: static decomposition over the full link set, one lazily
	// built model per zone over that zone's grow-only demand support (a
	// dense city zone can hold tens of thousands of conflicting link pairs,
	// so a model over all zone links would be intractable; the links that
	// ever carry demand are few). zoneInc[zi], zoneSupport[zi] and the
	// demand entries of zone zi's links are guarded by zoneMu[zi] in
	// sharded mode (writes additionally hold e.mu for the demand map).
	dec         *partition.Decomposition
	zoneInc     []*schedule.Incremental
	zoneSupport [][]topology.LinkID
	zoneMu      []sync.Mutex
	// Exact-solve memo (monolithic mode): demand fingerprint -> verdict,
	// FIFO-evicted at memoCap entries.
	memo      map[string]memoEntry
	memoOrder []string
	memoCap   int

	// Defragmentation state: dfMu serializes background re-packs (one at a
	// time); the private models below exist so a defrag solve never touches
	// the decision-path models.
	dfMu       sync.Mutex
	dfInc      *schedule.Incremental
	dfSupport  []topology.LinkID
	dfZoneInc  map[int]*schedule.Incremental
	dfZoneSup  map[int][]topology.LinkID

	stats   Stats
	scratch [][2]int

	cFast, cWarm, cCold, cReject *obs.Counter
	cRelease, cCompact           *obs.Counter
	cZoneGreedy, cWarmPivots     *obs.Counter
	cMemo, cSatisfice, cBudget   *obs.Counter
	cDefrag, cDefragSlots        *obs.Counter
	cPreemptAttempt              *obs.Counter
	cPreemptAdmit, cPreemptEvict *obs.Counter
	hDecision, hCompact          *obs.Histogram
	hBatch, hLockWait            *obs.Histogram
	gQueue                       *obs.Gauge
}

// New builds an engine serving an empty schedule.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("%w: nil conflict graph", ErrBadFlow)
	}
	if err := cfg.Frame.Validate(); err != nil {
		return nil, err
	}
	maxWin := cfg.MaxWindow
	if maxWin <= 0 || maxWin > cfg.Frame.DataSlots {
		maxWin = cfg.Frame.DataSlots
	}
	s, err := tdma.NewSchedule(cfg.Frame)
	if err != nil {
		return nil, err
	}
	if cfg.Sharded && !cfg.Zoned {
		return nil, fmt.Errorf("%w: Sharded requires Zoned (per-zone locks need zones)", ErrBadFlow)
	}
	if cfg.UGSDeadline < 0 || cfg.RtPSWindow < 0 {
		return nil, fmt.Errorf("%w: negative class deadline (ugs %d, rtps %d)",
			ErrBadFlow, cfg.UGSDeadline, cfg.RtPSWindow)
	}
	if cfg.UGSDeadline > 0 && cfg.RtPSWindow > 0 && cfg.RtPSWindow < cfg.UGSDeadline {
		return nil, fmt.Errorf("%w: rtPS window %d below UGS deadline %d",
			ErrBadFlow, cfg.RtPSWindow, cfg.UGSDeadline)
	}
	if cfg.Preempt && cfg.Sharded {
		return nil, fmt.Errorf("%w: Preempt requires the serial engine (preemption retries roll back the whole schedule)", ErrBadFlow)
	}
	e := &Engine{
		cfg:     cfg,
		maxWin:  maxWin,
		sharded: cfg.Sharded,
		sched:   s,
		occ:     make([][][2]int, cfg.Graph.NumVertices()),
		demand:  make(map[topology.LinkID]int),
		flows:   make(map[FlowID]Flow),
		cls:     make(map[topology.LinkID][2]int),
		pending: make(map[FlowID]bool),
	}
	e.memoCap = cfg.MemoSize
	if e.memoCap == 0 {
		e.memoCap = defaultMemoSize
	}
	if e.memoCap > 0 {
		e.memo = make(map[string]memoEntry, e.memoCap)
	}
	if cfg.Zoned {
		// Static zoning over the full link universe: decompose a synthetic
		// all-active problem so every link has a zone for the engine's
		// lifetime, whatever the demand pattern does.
		synth := &schedule.Problem{
			Graph:      cfg.Graph,
			Demand:     make(map[topology.LinkID]int, cfg.Graph.NumVertices()),
			FrameSlots: cfg.Frame.DataSlots,
		}
		for l := 0; l < cfg.Graph.NumVertices(); l++ {
			synth.Demand[topology.LinkID(l)] = 1
		}
		dec, err := partition.Decompose(synth, cfg.ZoneSize)
		if err != nil {
			return nil, err
		}
		e.dec = dec
		e.zoneInc = make([]*schedule.Incremental, len(dec.Zones))
		e.zoneSupport = make([][]topology.LinkID, len(dec.Zones))
		e.zoneMu = make([]sync.Mutex, len(dec.Zones))
	}
	if r := cfg.Registry; r != nil {
		e.cFast = r.Counter("admit.fastpath_hit")
		e.cWarm = r.Counter("admit.warm_hit")
		e.cCold = r.Counter("admit.cold_hit")
		e.cReject = r.Counter("admit.reject")
		e.cRelease = r.Counter("admit.release")
		e.cCompact = r.Counter("admit.compact")
		e.cZoneGreedy = r.Counter("admit.zone_greedy")
		e.cWarmPivots = r.Counter("admit.warm_pivots")
		e.cMemo = r.Counter("admit.memo_hit")
		e.cSatisfice = r.Counter("admit.satisfice")
		e.cBudget = r.Counter("admit.budget_reject")
		e.cDefrag = r.Counter("admit.defrag")
		e.cDefragSlots = r.Counter("admit.defrag_win_slots")
		e.cPreemptAttempt = r.Counter("admit.preempt_attempt")
		e.cPreemptAdmit = r.Counter("admit.preempt_admit")
		e.cPreemptEvict = r.Counter("admit.preempt_evict")
		e.hDecision = r.Histogram("admit.decision_us", 0, 100_000, 50)
		e.hCompact = r.Histogram("admit.compact_us", 0, 100_000, 50)
		e.hBatch = r.Histogram("admit.batch_size", 0, 64, 32)
		e.hLockWait = r.Histogram("admit.lock_wait_us", 0, 100_000, 50)
		e.gQueue = r.Gauge("admit.queue_depth")
	}
	return e, nil
}

// Window returns the current schedule makespan in slots.
//
// Locking note (audited for the sharded engine): e.mu alone is sufficient
// for this and the other read accessors even under Config.Sharded. Every
// mutation of reader-visible state — e.sched, e.occ, e.demand, e.flows,
// e.win, e.cls, e.stats — happens with e.mu held: the sharded decision
// path mutates only zone solver state (zoneInc, zoneSupport, guarded by
// the zone locks) during its unlocked solve phase B, and commits through
// phases A and C under e.mu. TestShardedSnapshotRace hammers these
// accessors against ServeConcurrent under the race detector to keep it
// that way.
func (e *Engine) Window() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.win
}

// NumFlows returns the number of flows currently admitted.
func (e *Engine) NumFlows() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.flows)
}

// Stats returns a snapshot of the lifetime tallies.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Snapshot returns a copy of the live schedule. The assignment slice is
// cloned under e.mu (see the locking note on Window), so the copy is a
// consistent point-in-time schedule even while sharded admissions and
// background defrag run concurrently.
func (e *Engine) Snapshot() *tdma.Schedule {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := &tdma.Schedule{Config: e.sched.Config,
		Assignments: slices.Clone(e.sched.Assignments)}
	cp.Invalidate()
	return cp
}

func (f Flow) validate(numLinks, frameSlots int) error {
	if f.ID == "" {
		return fmt.Errorf("%w: empty flow ID", ErrBadFlow)
	}
	if len(f.Path) == 0 || len(f.Path) != len(f.Slots) {
		return fmt.Errorf("%w: flow %s has %d links, %d slot counts",
			ErrBadFlow, f.ID, len(f.Path), len(f.Slots))
	}
	if f.Class > ClassUGS {
		return fmt.Errorf("%w: flow %s has unknown class %d", ErrBadFlow, f.ID, f.Class)
	}
	for i, l := range f.Path {
		if l < 0 || int(l) >= numLinks {
			return fmt.Errorf("%w: flow %s link %d outside graph", ErrBadFlow, f.ID, l)
		}
		if f.Slots[i] <= 0 {
			return fmt.Errorf("%w: flow %s slot count %d on link %d",
				ErrBadFlow, f.ID, f.Slots[i], l)
		}
	}
	// A link may appear on the path more than once (a route crossing the
	// same contention domain twice); the tiers all see the FOLDED per-link
	// demand (see demand()). Folded demand beyond the frame can never be
	// served in any window, and unlike a single oversized entry — which the
	// structural cap screens per tier — the individual entries of a
	// duplicate-link flow can each look harmless, so the mismatch is
	// rejected here where the request is still a request.
	for i, l := range f.Path {
		seen := false
		for j := 0; j < i; j++ {
			if f.Path[j] == l {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		total := 0
		for j := i; j < len(f.Path); j++ {
			if f.Path[j] == l {
				total += f.Slots[j]
			}
		}
		if total > frameSlots {
			return fmt.Errorf("%w: flow %s folded demand %d on link %d exceeds the %d-slot frame",
				ErrBadFlow, f.ID, total, l, frameSlots)
		}
	}
	return nil
}

// Admit decides one admission request. Rejections return Admitted=false
// with a nil error; errors are reserved for malformed requests, solver
// resource exhaustion, and context cancellation (ctx.Err() once the
// in-flight solve has been interrupted and rolled back).
func (e *Engine) Admit(ctx context.Context, f Flow) (Decision, error) {
	if e.sharded {
		return e.admitSharded(ctx, f)
	}
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.admitSerialLocked(ctx, f, start)
}

// admitSerialLocked is the single-lock decision body: validation, one
// admission attempt through the tiers, and — for rejected guaranteed-class
// arrivals with Config.Preempt — the preemption retry loop. Called with
// e.mu held.
func (e *Engine) admitSerialLocked(ctx context.Context, f Flow, start time.Time) (Decision, error) {
	if err := f.validate(len(e.occ), e.cfg.Frame.DataSlots); err != nil {
		return Decision{}, err
	}
	if _, dup := e.flows[f.ID]; dup {
		return Decision{}, fmt.Errorf("%w: flow %s already admitted", ErrBadFlow, f.ID)
	}
	dec, err := e.attemptLocked(ctx, f)
	if err != nil {
		return Decision{}, err
	}
	if !dec.Admitted && e.cfg.Preempt && f.Class.Guaranteed() {
		// Only guaranteed-class arrivals ever enter the preemption search,
		// so a BE or nrtPS arrival can never evict anything.
		dec, err = e.tryPreempt(ctx, f, dec)
		if err != nil {
			return Decision{}, err
		}
	}
	return e.finish(start, dec), nil
}

// attemptLocked runs one admission attempt for f — structural screen, the
// first-fit fastpath, then the solver tiers — committing engine state and
// booking the per-tier tallies on success. The shared admit/reject tallies
// and the latency stamp are the caller's (finish), so the preemption loop
// can re-run the attempt after evictions. Called with e.mu held; f must be
// validated and not a duplicate.
func (e *Engine) attemptLocked(ctx context.Context, f Flow) (Decision, error) {
	delta := f.demand()
	for l, d := range delta {
		if e.demand[l]+d > e.maxWin {
			// No window within the cap can carry this link's demand:
			// structurally impossible, no solver needed.
			return Decision{Tier: TierNone}, nil
		}
	}
	newCls := e.clsAfter(f)
	if newCls != nil {
		for l := range delta {
			if v := newCls[l]; e.clsOver(v[0], v[1]) {
				// The link's guaranteed-class slots cannot all complete by
				// their deadlines in any window: structurally impossible.
				return Decision{Tier: TierNone}, nil
			}
		}
	}

	if pending := e.tryFastpath(delta, newCls); pending != nil {
		for _, a := range pending {
			if err := e.sched.Add(a); err != nil {
				return Decision{}, err
			}
			e.occAdd(a.Link, a.Start, a.End())
		}
		for l, d := range delta {
			e.demand[l] += d
		}
		if newCls != nil {
			e.cls = newCls
		}
		e.flows[f.ID] = f
		e.gen++
		e.stats.Fast++
		e.cFast.Inc()
		return Decision{Admitted: true, Tier: TierFast, Window: e.win}, nil
	}

	newDemand := make(map[topology.LinkID]int, len(e.demand)+len(delta))
	for l, d := range e.demand {
		newDemand[l] = d
	}
	for l, d := range delta {
		newDemand[l] += d
	}
	opts := e.cfg.MILP
	if ctx != nil {
		opts.Interrupt = ctx.Done()
	}

	var (
		dec Decision
		err error
	)
	if e.cfg.Zoned {
		dec, err = e.admitZoned(ctx, delta, newDemand, newCls, opts)
	} else {
		dec, err = e.admitMono(ctx, newDemand, newCls, opts)
	}
	if err != nil {
		return Decision{}, err
	}
	if dec.Admitted {
		e.demand = newDemand
		if newCls != nil {
			e.cls = newCls
		}
		e.flows[f.ID] = f
		e.gen++
		switch dec.Tier {
		case TierWarm:
			e.stats.Warm++
			e.stats.WarmPivots += uint64(dec.Pivots)
			e.cWarm.Inc()
			e.cWarmPivots.Add(uint64(dec.Pivots))
		case TierCold:
			e.stats.Cold++
			e.cCold.Inc()
		}
	}
	return dec, nil
}

// finish stamps the latency and the shared admit/reject tallies.
func (e *Engine) finish(start time.Time, d Decision) Decision {
	d.Latency = time.Since(start)
	if d.Admitted {
		e.stats.Admitted++
	} else {
		e.stats.Rejected++
		e.cReject.Inc()
	}
	e.hDecision.Observe(float64(d.Latency.Microseconds()))
	return d
}

// classifySolverErr folds a solver failure into the engine's error contract
// without touching engine state: infeasibility is a rejection (nil error),
// an interrupt surfaces the context's error, budget exhaustion rejects
// conservatively when configured (budget=true so the caller can count it),
// anything else passes through as out.
func (e *Engine) classifySolverErr(ctx context.Context, err error) (reject, budget bool, out error) {
	if errors.Is(err, schedule.ErrInfeasible) {
		return true, false, nil
	}
	if ctx != nil && ctx.Err() != nil && errors.Is(err, milp.ErrLimit) {
		return false, false, ctx.Err()
	}
	if e.cfg.BudgetRejects && errors.Is(err, milp.ErrLimit) {
		return true, true, nil
	}
	return false, false, err
}

// solverErr applies classifySolverErr and books the budget-rejection
// tallies. Called with e.mu held.
func (e *Engine) solverErr(ctx context.Context, tier Tier, err error) (Decision, error) {
	_, budget, out := e.classifySolverErr(ctx, err)
	if out != nil {
		return Decision{}, out
	}
	if budget {
		e.stats.BudgetRejected++
		e.cBudget.Inc()
	}
	return Decision{Tier: tier, Window: e.win}, nil
}

// minSlotsServing wraps Incremental.MinSlots with the satisficing fallback
// of Config.BudgetRejects: when the exact search blows its budget under a
// live context, probe the window cap once — lo = hint = maxWin makes it a
// single feasibility check — and return that schedule with satisficed=true
// (the window is then the probe schedule's makespan, feasible but not proven
// minimal). It touches no shared engine state beyond the model it is handed,
// so the sharded engine can run it under a zone lock alone; the caller books
// satisficed outcomes into the tallies under e.mu.
func (e *Engine) minSlotsServing(ctx context.Context, inc *schedule.Incremental, p *schedule.Problem, hint, lo int, opts milp.Options) (win int, s *tdma.Schedule, solved, pivots int, satisficed bool, err error) {
	win, s, solved, pivots, err = inc.MinSlots(p, hint, lo, e.maxWin, opts)
	if err == nil || !e.cfg.BudgetRejects || !errors.Is(err, milp.ErrLimit) ||
		(ctx != nil && ctx.Err() != nil) {
		return win, s, solved, pivots, false, err
	}
	_, s2, solved2, piv2, err2 := inc.MinSlots(p, e.maxWin, e.maxWin, e.maxWin, opts)
	solved += solved2
	pivots += piv2
	if err2 != nil {
		// ErrInfeasible here is still exact — nothing fits within the cap —
		// and a second ErrLimit becomes the conservative budget rejection.
		return 0, nil, solved, pivots, false, err2
	}
	return makespanOf(s2), s2, solved, pivots, true, nil
}

// bookSatisficed records satisficing fallbacks taken during a decision's
// solver phase. Called with e.mu held.
func (e *Engine) bookSatisficed(n int) {
	if n <= 0 {
		return
	}
	e.stats.Satisficed += uint64(n)
	e.cSatisfice.Add(uint64(n))
}

// admitMono is the monolithic solver tier: one persistent model over a
// grow-only support set. newCls carries the prospective per-link class
// totals (nil when the engine is class-oblivious); they reach the solver
// as absolute start caps. Called with e.mu held.
func (e *Engine) admitMono(ctx context.Context, newDemand map[topology.LinkID]int, newCls map[topology.LinkID][2]int, opts milp.Options) (Decision, error) {
	fp := fingerprint(newDemand, newCls)
	if ent, ok := e.memo[fp]; ok {
		e.stats.MemoHits++
		e.cMemo.Inc()
		if !ent.feasible {
			return Decision{Tier: TierWarm, Window: e.win}, nil
		}
		e.sched = &tdma.Schedule{Config: e.cfg.Frame, Assignments: slices.Clone(ent.assigns)}
		e.sched.Invalidate()
		e.rebuildOcc()
		e.win = ent.win
		e.solverDirty = false
		return Decision{Admitted: true, Tier: TierWarm, Window: ent.win}, nil
	}
	tier := TierWarm
	if e.inc == nil || !e.inc.Supports(newDemand) {
		support := e.support
		for l, d := range newDemand {
			if d > 0 && !slices.Contains(support, l) {
				support = append(support, l)
			}
		}
		inc, err := schedule.NewIncremental(e.cfg.Graph, support, e.cfg.Frame)
		if err != nil {
			return Decision{}, err
		}
		slices.Sort(support)
		e.inc, e.support = inc, support
		tier = TierCold
	}
	lo := 0
	if tier == TierWarm && !e.solverDirty {
		// Demand has only grown since the last exact solve, so its window
		// is a sound lower bound; with the hint equal to it, the common
		// case is a single warm probe.
		lo = e.win
	}
	p := &schedule.Problem{Graph: e.cfg.Graph, Demand: newDemand, FrameSlots: e.cfg.Frame.DataSlots,
		StartCap: e.capsFor(newCls)}
	win, s, solved, pivots, sat, err := e.minSlotsServing(ctx, e.inc, p, e.win, lo, opts)
	if err != nil {
		if errors.Is(err, schedule.ErrInfeasible) {
			e.memoStore(fp, memoEntry{})
		}
		return e.solverErr(ctx, tier, err)
	}
	if sat {
		e.bookSatisficed(1)
	}
	if !sat {
		// Satisficed windows are feasible but not proven minimal, so they
		// never enter the exact memo.
		e.memoStore(fp, memoEntry{feasible: true, win: win, assigns: slices.Clone(s.Assignments)})
	}
	e.sched = s
	e.rebuildOcc()
	e.win = win
	e.solverDirty = sat
	return Decision{Admitted: true, Tier: tier, Window: win, Solved: solved, Pivots: pivots}, nil
}

// fingerprint serializes a demand vector into a memo key: links ascending.
// A classed engine folds the per-link class totals in too — the same
// aggregate demand under a different UGS/rtPS composition has different
// start caps, so the verdicts are not interchangeable. With cls nil the
// key bytes are exactly the pre-class ones.
func fingerprint(demand map[topology.LinkID]int, cls map[topology.LinkID][2]int) string {
	links := make([]topology.LinkID, 0, len(demand))
	for l, d := range demand {
		if d > 0 {
			links = append(links, l)
		}
	}
	slices.Sort(links)
	var b []byte
	for _, l := range links {
		b = binary.AppendVarint(b, int64(l))
		b = binary.AppendVarint(b, int64(demand[l]))
	}
	if cls != nil {
		b = append(b, 0xff)
		for _, l := range links {
			v := cls[l]
			b = binary.AppendVarint(b, int64(v[0]))
			b = binary.AppendVarint(b, int64(v[1]))
		}
	}
	return string(b)
}

// memoStore inserts an exact verdict, evicting FIFO at capacity. Called
// with e.mu held.
func (e *Engine) memoStore(fp string, ent memoEntry) {
	if e.memoCap <= 0 {
		return
	}
	if _, ok := e.memo[fp]; !ok {
		if len(e.memoOrder) >= e.memoCap {
			delete(e.memo, e.memoOrder[0])
			e.memoOrder = e.memoOrder[1:]
		}
		e.memoOrder = append(e.memoOrder, fp)
	}
	e.memo[fp] = ent
}

// admitZoned re-solves only the zones the delta touches and first-fits their
// new blocks back against the rest of the schedule. newCls carries the
// prospective per-link class totals (nil when class-oblivious): the zone
// solves see them as start caps, and the re-stitch respects them through
// stitchLimit. Called with e.mu held.
func (e *Engine) admitZoned(ctx context.Context, delta, newDemand map[topology.LinkID]int, newCls map[topology.LinkID][2]int, opts milp.Options) (Decision, error) {
	snapshot := slices.Clone(e.sched.Assignments)
	snapWin := e.win
	restore := func() {
		e.sched.Assignments = snapshot
		e.sched.Invalidate()
		e.win = snapWin
		e.rebuildOcc()
	}
	maxPairs := e.cfg.MaxZonePairs
	if maxPairs <= 0 {
		maxPairs = partition.DefaultMaxZonePairs
	}

	var zones []int
	for l := range delta {
		if zi := e.dec.ZoneOf(l); zi >= 0 && !slices.Contains(zones, zi) {
			zones = append(zones, zi)
		}
	}
	slices.Sort(zones)

	tier, solved, pivots := TierWarm, 0, 0
	full := &schedule.Problem{Graph: e.cfg.Graph, Demand: newDemand, FrameSlots: e.cfg.Frame.DataSlots,
		StartCap: e.capsFor(newCls)}
	for _, zi := range zones {
		zp := partition.ZoneProblem(full, e.dec, zi)
		zp.StartCap = full.StartCap
		zoneLinks := e.dec.Zones[zi].Links

		var blocks []tdma.Assignment
		if partition.ActivePairs(zp) > maxPairs {
			gs, err := schedule.Greedy(zp, e.cfg.Frame)
			if err != nil {
				restore()
				return e.solverErr(ctx, tier, err)
			}
			blocks = gs.Assignments
			e.stats.ZoneGreedy++
			e.cZoneGreedy.Inc()
		} else {
			zinc := e.zoneInc[zi]
			if zinc == nil || !zinc.Supports(zp.Demand) {
				support := e.zoneSupport[zi]
				for l, d := range zp.Demand {
					if d > 0 && !slices.Contains(support, l) {
						support = append(support, l)
					}
				}
				var err error
				zinc, err = schedule.NewIncremental(e.cfg.Graph, support, e.cfg.Frame)
				if err != nil {
					restore()
					return Decision{}, err
				}
				slices.Sort(support)
				e.zoneInc[zi], e.zoneSupport[zi] = zinc, support
				tier = TierCold
			}
			hint := 0
			for _, l := range zoneLinks {
				for _, iv := range e.occ[l] {
					hint = max(hint, iv[1])
				}
			}
			_, zs, zsolved, zpiv, zsat, err := e.minSlotsServing(ctx, zinc, zp, hint, 0, opts)
			if err != nil {
				restore()
				return e.solverErr(ctx, tier, err)
			}
			if zsat {
				e.bookSatisficed(1)
			}
			blocks = zs.Assignments
			solved += zsolved
			pivots += zpiv
		}

		// Swap the zone's allocation: drop its old blocks, then first-fit
		// the new ones in ascending start order (the solver's layout is the
		// placement hint; conflicts against other zones are re-checked
		// against the live occupancy, so halo links stay safe).
		e.dropLinks(zoneLinks)
		slices.SortFunc(blocks, func(a, b tdma.Assignment) int {
			if a.Start != b.Start {
				return a.Start - b.Start
			}
			if a.Length != b.Length {
				return b.Length - a.Length
			}
			return int(a.Link - b.Link)
		})
		placed := make(map[topology.LinkID]int, len(zoneLinks))
		for _, b := range blocks {
			lim := e.stitchLimit(b.Link, placed[b.Link], b.Length, newCls)
			s := e.firstFit(b.Link, b.Length, lim, nil)
			if s < 0 {
				// Cross-zone packing failure (or a class deadline the
				// stitch cannot keep): conservative rejection, like the
				// partitioned planner's stitch failures.
				restore()
				return Decision{Tier: tier, Window: e.win}, nil
			}
			if err := e.sched.Add(tdma.Assignment{Link: b.Link, Start: s, Length: b.Length}); err != nil {
				restore()
				return Decision{}, err
			}
			e.occAdd(b.Link, s, s+b.Length)
			placed[b.Link] += b.Length
		}
	}
	e.win = makespanOf(e.sched)
	return Decision{Admitted: true, Tier: tier, Window: e.win, Solved: solved, Pivots: pivots}, nil
}

// Release returns a flow's slots. The schedule shrinks in place (highest
// start blocks first); every CompactEvery releases the engine re-packs all
// blocks first-fit to reclaim fragmentation — the re-pack provably never
// grows the makespan.
func (e *Engine) Release(id FlowID) error {
	if e.sharded {
		return e.releaseSharded(id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.flows[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownFlow, id)
	}
	return e.releaseLocked(f)
}

// releaseLocked returns f's slots and runs the periodic compaction. Called
// with e.mu held (and, in sharded mode, the zone locks of f's path).
func (e *Engine) releaseLocked(f Flow) error {
	for l, d := range f.demand() {
		if err := e.sched.TrimLink(l, d); err != nil {
			return err
		}
		if e.demand[l] -= d; e.demand[l] <= 0 {
			delete(e.demand, l)
		}
	}
	delete(e.flows, f.ID)
	e.classAdd(f, -1)
	e.rebuildOcc()
	e.win = makespanOf(e.sched)
	e.solverDirty = true
	e.gen++
	e.stats.Releases++
	e.cRelease.Inc()
	e.releases++
	every := e.cfg.CompactEvery
	if every == 0 {
		every = defaultCompactEvery
	}
	if every > 0 && e.releases >= every {
		e.releases = 0
		if err := e.compact(); err != nil {
			return err
		}
	}
	return nil
}

// compact re-packs every block first-fit in ascending (start, length desc)
// order. Sorted re-insertion can only move a block to an earlier slot: all
// earlier-starting conflicting blocks end at or before this block's old
// start and are re-placed no later than they were, so the old position is
// always still free. Hence the makespan never grows. Called with e.mu held.
func (e *Engine) compact() error {
	start := time.Now()
	blocks := slices.Clone(e.sched.Assignments)
	slices.SortFunc(blocks, func(a, b tdma.Assignment) int {
		if a.Start != b.Start {
			return a.Start - b.Start
		}
		if a.Length != b.Length {
			return b.Length - a.Length
		}
		return int(a.Link - b.Link)
	})
	e.sched.Assignments = e.sched.Assignments[:0]
	e.sched.Invalidate()
	for i := range e.occ {
		e.occ[i] = e.occ[i][:0]
	}
	for _, b := range blocks {
		s := e.firstFit(b.Link, b.Length, e.maxWin, nil)
		if s < 0 || s > b.Start {
			return fmt.Errorf("admit: compaction moved link %d block from %d to %d", b.Link, b.Start, s)
		}
		if err := e.sched.Add(tdma.Assignment{Link: b.Link, Start: s, Length: b.Length}); err != nil {
			return err
		}
		e.occAdd(b.Link, s, s+b.Length)
	}
	e.win = makespanOf(e.sched)
	e.gen++
	e.stats.Compactions++
	e.cCompact.Inc()
	e.hCompact.Observe(float64(time.Since(start).Microseconds()))
	return nil
}

// Check verifies the engine's internal invariants: the schedule is
// conflict-free, carries exactly the aggregate demand, and the occupancy
// index and makespan mirror it. Test hook.
func (e *Engine) Check() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sched.Validate(e.cfg.Graph); err != nil {
		return err
	}
	slots := make(map[topology.LinkID]int)
	for _, a := range e.sched.Assignments {
		slots[a.Link] += a.Length
	}
	for l, d := range e.demand {
		if slots[l] != d {
			return fmt.Errorf("admit: link %d carries %d slots, demand %d", l, slots[l], d)
		}
	}
	for l, n := range slots {
		if e.demand[l] != n {
			return fmt.Errorf("admit: link %d carries %d slots, demand %d", l, n, e.demand[l])
		}
	}
	if got := makespanOf(e.sched); got != e.win {
		return fmt.Errorf("admit: window %d, makespan %d", e.win, got)
	}
	if e.win > e.maxWin {
		return fmt.Errorf("admit: window %d beyond cap %d", e.win, e.maxWin)
	}
	occSlots := 0
	for _, ivs := range e.occ {
		for _, iv := range ivs {
			occSlots += iv[1] - iv[0]
		}
	}
	schedSlots := 0
	for _, a := range e.sched.Assignments {
		schedSlots += a.Length
	}
	if occSlots != schedSlots {
		return fmt.Errorf("admit: occupancy index holds %d slots, schedule %d", occSlots, schedSlots)
	}
	if e.classed() {
		// The class totals must mirror the flow table, and every link's
		// guaranteed prefixes must be covered by their deadlines.
		want := make(map[topology.LinkID][2]int)
		for _, f := range e.flows {
			var idx int
			switch f.Class {
			case ClassUGS:
				idx = 0
			case ClassRtPS:
				idx = 1
			default:
				continue
			}
			for i, l := range f.Path {
				v := want[l]
				v[idx] += f.Slots[i]
				want[l] = v
			}
		}
		for l, v := range want {
			if e.cls[l] != v {
				return fmt.Errorf("admit: link %d class totals %v, flows say %v", l, e.cls[l], v)
			}
		}
		for l, v := range e.cls {
			if want[l] != v {
				return fmt.Errorf("admit: link %d class totals %v, flows say %v", l, v, want[l])
			}
			if D1 := e.cfg.UGSDeadline; D1 > 0 && v[0] > 0 && e.covered(l, D1) < v[0] {
				return fmt.Errorf("admit: link %d covers %d slots by UGS deadline %d, needs %d",
					l, e.covered(l, D1), D1, v[0])
			}
			if D2 := e.cfg.RtPSWindow; D2 > 0 && v[1] > 0 && e.covered(l, D2) < v[0]+v[1] {
				return fmt.Errorf("admit: link %d covers %d slots by rtPS window %d, needs %d",
					l, e.covered(l, D2), D2, v[0]+v[1])
			}
		}
	}
	return nil
}

// tryFastpath attempts first-fit placement of the delta entirely within the
// current window. Returns the placements to commit, or nil when any link
// does not fit (the solver tiers take over). newCls, when non-nil, carries
// the prospective per-link class totals: each link's placement is then cut
// into up to three segments — slots that must end by the UGS deadline,
// by the rtPS window, and anywhere in the window — sized so the link's
// deadline coverage (see Check) holds after the commit. With newCls nil the
// placement degenerates to the single unconstrained segment and is
// byte-identical to the class-oblivious fastpath. Called with e.mu held.
func (e *Engine) tryFastpath(delta map[topology.LinkID]int, newCls map[topology.LinkID][2]int) []tdma.Assignment {
	if e.win == 0 {
		return nil
	}
	links := make([]topology.LinkID, 0, len(delta))
	for l := range delta {
		links = append(links, l)
	}
	slices.Sort(links)
	var pending []tdma.Assignment
	for _, l := range links {
		need := delta[l]
		n1, n2 := 0, 0
		lim1, lim2 := e.win, e.win
		if newCls != nil {
			v := newCls[l]
			if D1 := e.cfg.UGSDeadline; D1 > 0 && v[0] > 0 {
				if n1 = v[0] - e.covered(l, D1); n1 < 0 {
					n1 = 0
				}
				lim1 = min(lim1, D1)
			}
			if D2 := e.cfg.RtPSWindow; D2 > 0 && v[1] > 0 {
				if n2 = v[0] + v[1] - e.covered(l, D2); n2 < 0 {
					n2 = 0
				}
				lim2 = min(lim2, D2)
			}
			n2 = max(n2, n1)
			if n2 > need {
				// Coverage short by more than this delta adds: the live
				// invariant should make this impossible, but defer to the
				// solver rather than over-place.
				return nil
			}
		}
		for _, seg := range [3][2]int{{n1, lim1}, {n2 - n1, lim2}, {need - n2, e.win}} {
			n, lim := seg[0], seg[1]
			for n > 0 {
				s := e.firstFit(l, n, lim, pending)
				m := n
				if s < 0 {
					// No room for the full run; take the largest leading free
					// gap instead, splitting the demand across blocks.
					s, m = e.firstGap(l, lim, pending)
					if s < 0 {
						return nil
					}
					if m > n {
						m = n
					}
				}
				pending = append(pending, tdma.Assignment{Link: l, Start: s, Length: m})
				n -= m
			}
		}
	}
	return pending
}

// occAdd inserts [s,end) into link l's interval index, keeping start order.
func (e *Engine) occAdd(l topology.LinkID, s, end int) {
	ivs := e.occ[l]
	i, _ := slices.BinarySearchFunc(ivs, s, func(iv [2]int, s int) int { return iv[0] - s })
	e.occ[l] = slices.Insert(ivs, i, [2]int{s, end})
}

// rebuildOcc regenerates the interval index from the live schedule.
func (e *Engine) rebuildOcc() {
	for i := range e.occ {
		e.occ[i] = e.occ[i][:0]
	}
	for _, a := range e.sched.Assignments {
		e.occ[a.Link] = append(e.occ[a.Link], [2]int{a.Start, a.End()})
	}
	for i := range e.occ {
		slices.SortFunc(e.occ[i], func(a, b [2]int) int { return a[0] - b[0] })
	}
}

// dropLinks removes every assignment of the given links from the schedule
// and the occupancy index. Called with e.mu held.
func (e *Engine) dropLinks(links []topology.LinkID) {
	e.sched.Assignments = slices.DeleteFunc(e.sched.Assignments, func(a tdma.Assignment) bool {
		return slices.Contains(links, a.Link)
	})
	e.sched.Invalidate()
	for _, l := range links {
		e.occ[l] = e.occ[l][:0]
	}
}

// blockers collects the intervals that constrain link l — its own and its
// conflict neighbors', plus pending placements — sorted by start.
func (e *Engine) blockers(l topology.LinkID, pending []tdma.Assignment) [][2]int {
	bs := e.scratch[:0]
	bs = append(bs, e.occ[l]...)
	e.cfg.Graph.VisitNeighbors(l, func(nb topology.LinkID) bool {
		bs = append(bs, e.occ[nb]...)
		return true
	})
	for _, p := range pending {
		if p.Link == l || e.cfg.Graph.Conflicts(p.Link, l) {
			bs = append(bs, [2]int{p.Start, p.End()})
		}
	}
	slices.SortFunc(bs, func(a, b [2]int) int { return a[0] - b[0] })
	e.scratch = bs
	return bs
}

// firstFit returns the earliest start for a length-d block of link l ending
// at or before limit, or -1. O(conflict degree × blocks).
func (e *Engine) firstFit(l topology.LinkID, d, limit int, pending []tdma.Assignment) int {
	cur := 0
	for _, b := range e.blockers(l, pending) {
		if b[0]-cur >= d {
			break
		}
		cur = max(cur, b[1])
		if cur+d > limit {
			return -1
		}
	}
	if cur+d > limit {
		return -1
	}
	return cur
}

// firstGap returns the earliest free gap for link l within limit as (start,
// length), or (-1, 0).
func (e *Engine) firstGap(l topology.LinkID, limit int, pending []tdma.Assignment) (int, int) {
	cur := 0
	for _, b := range e.blockers(l, pending) {
		if b[0] > cur {
			return cur, min(b[0], limit) - cur
		}
		cur = max(cur, b[1])
		if cur >= limit {
			return -1, 0
		}
	}
	if cur >= limit {
		return -1, 0
	}
	return cur, limit - cur
}

func makespanOf(s *tdma.Schedule) int {
	end := 0
	for _, a := range s.Assignments {
		if a.End() > end {
			end = a.End()
		}
	}
	return end
}
