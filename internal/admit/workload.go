package admit

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"wimesh/internal/stats"
	"wimesh/internal/topology"
)

// Event is one arrival or departure of a serving workload, ordered by
// virtual time.
type Event struct {
	// At is the virtual occurrence time from the workload start.
	At time.Duration
	// Arrive distinguishes arrivals (carrying Flow) from departures
	// (carrying only Flow.ID).
	Arrive bool
	Flow   Flow
}

// Workload is a deterministic call sequence: Poisson arrivals with
// exponential holding times over random shortest-path routes. The same
// WorkloadConfig always generates the byte-identical event list — every
// random draw happens in a fixed order from one seeded source, and
// departures are emitted for every arrival whether or not an engine later
// admits it, so replay does not depend on admission outcomes.
type Workload struct {
	Events []Event
	// Erlang is the offered load: arrival rate times mean holding time.
	Erlang float64
}

// WorkloadConfig parameterizes Generate.
type WorkloadConfig struct {
	Topo *topology.Network
	// Calls is the number of arrivals to generate.
	Calls int
	// ArrivalRate is the Poisson arrival intensity in calls per second.
	ArrivalRate float64
	// MeanHolding is the mean exponential call duration.
	MeanHolding time.Duration
	// SlotsPerLink is the demand one call adds on each link of its route.
	SlotsPerLink int
	// Seed drives all randomness.
	Seed int64
	// ToGateway routes every call to the topology's gateway instead of the
	// drawn destination — the WiMAX-mesh traffic pattern, where all flows
	// transit the base station. The destination draw still happens, so the
	// random sequence (and hence every later call) is unchanged; calls
	// originating at the gateway itself are dropped like unroutable ones.
	ToGateway bool
	// ClassMix, when non-empty, draws each call's service class from the
	// weighted mix (one extra uniform draw per call, after the holding
	// time, so an empty mix keeps the legacy random sequence exactly).
	// A share's SlotsPerLink overrides the workload-wide one, letting
	// video (rtPS) and bulk-data (nrtPS) calls carry heavier demand than
	// voice. An empty mix generates pure best-effort flows as before.
	ClassMix []ClassShare
}

// ClassShare is one component of a workload's service-class mix.
type ClassShare struct {
	Class Class
	// Weight is this class's share of arrivals, normalized over the mix.
	Weight float64
	// SlotsPerLink overrides WorkloadConfig.SlotsPerLink for this class
	// (0 = inherit).
	SlotsPerLink int
}

// Generate builds the workload. Calls between nodes with no route are
// dropped after their draws are consumed, keeping the sequence of random
// numbers — and hence every later call — independent of routing outcomes.
func Generate(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrBadFlow)
	}
	n := cfg.Topo.NumNodes()
	if n < 2 {
		return nil, fmt.Errorf("%w: %d nodes, need at least 2", ErrBadFlow, n)
	}
	if cfg.Calls <= 0 || cfg.ArrivalRate <= 0 || cfg.MeanHolding <= 0 || cfg.SlotsPerLink <= 0 {
		return nil, fmt.Errorf("%w: non-positive workload parameter", ErrBadFlow)
	}
	var mixTotal float64
	for _, cs := range cfg.ClassMix {
		if cs.Weight <= 0 {
			return nil, fmt.Errorf("%w: class %s weight %v, want positive", ErrBadFlow, cs.Class, cs.Weight)
		}
		if cs.Class > ClassUGS {
			return nil, fmt.Errorf("%w: unknown class %d in mix", ErrBadFlow, cs.Class)
		}
		if cs.SlotsPerLink < 0 {
			return nil, fmt.Errorf("%w: class %s slots per link %d", ErrBadFlow, cs.Class, cs.SlotsPerLink)
		}
		mixTotal += cs.Weight
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Erlang: cfg.ArrivalRate * cfg.MeanHolding.Seconds()}
	now := time.Duration(0)
	for i := 0; i < cfg.Calls; i++ {
		// Fixed draw order: interarrival, src, dst (redrawn while == src),
		// holding. Nothing else consumes rng.
		now += time.Duration(rng.ExpFloat64() / cfg.ArrivalRate * float64(time.Second))
		src := topology.NodeID(rng.Intn(n))
		dst := topology.NodeID(rng.Intn(n))
		for dst == src {
			dst = topology.NodeID(rng.Intn(n))
		}
		holding := time.Duration(rng.ExpFloat64() * float64(cfg.MeanHolding))
		class := ClassBE
		spl := cfg.SlotsPerLink
		if len(cfg.ClassMix) > 0 {
			// The class draw comes last and only when a mix is configured,
			// so mixless workloads replay the legacy random sequence.
			x := rng.Float64() * mixTotal
			cs := cfg.ClassMix[len(cfg.ClassMix)-1]
			for _, c := range cfg.ClassMix {
				if x < c.Weight {
					cs = c
					break
				}
				x -= c.Weight
			}
			class = cs.Class
			if cs.SlotsPerLink > 0 {
				spl = cs.SlotsPerLink
			}
		}
		if cfg.ToGateway {
			gw, ok := cfg.Topo.Gateway()
			if !ok {
				return nil, fmt.Errorf("%w: ToGateway needs a gateway node", ErrBadFlow)
			}
			if src == gw {
				continue
			}
			dst = gw
		}
		path, err := cfg.Topo.ShortestPath(src, dst)
		if err != nil || len(path) == 0 {
			continue
		}
		slots := make([]int, len(path))
		for j := range slots {
			slots[j] = spl
		}
		f := Flow{ID: FlowID(fmt.Sprintf("call-%d", i)), Path: path, Slots: slots, Class: class}
		w.Events = append(w.Events,
			Event{At: now, Arrive: true, Flow: f},
			Event{At: now + holding, Flow: Flow{ID: f.ID}})
	}
	// Order by time; at equal times departures go first (they free
	// capacity), then generation order keeps ties deterministic.
	slices.SortStableFunc(w.Events, func(a, b Event) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		if a.Arrive != b.Arrive {
			if a.Arrive {
				return 1
			}
			return -1
		}
		return 0
	})
	return w, nil
}

// ServeStats summarizes one Serve run.
type ServeStats struct {
	Offered, Admitted, Rejected int
	Fast, Warm, Cold            int
	// Preempted counts flows evicted by preemptive admissions during the
	// replay (Config.Preempt). Evicted flows stay counted as Admitted —
	// they were served until eviction — but their departures become no-ops.
	Preempted int
	// Latency collects per-decision latencies in seconds.
	Latency stats.Sample
	// Elapsed is the wall time spent inside Admit/Release calls.
	Elapsed time.Duration
	// Wall is the end-to-end replay time. For a serial replay it tracks
	// Elapsed closely; for ServeConcurrent it is the fair throughput
	// denominator, since workers overlap their in-call time.
	Wall time.Duration
}

// Serve replays the workload against the engine as fast as possible (event
// times only order the replay, they are not slept). It stops early when ctx
// is cancelled — including mid-solve, via the engine's solver interrupt —
// and returns ctx.Err() with the stats accumulated so far.
func Serve(ctx context.Context, e *Engine, w *Workload) (st ServeStats, _ error) {
	wallStart := time.Now()
	defer func() { st.Wall = time.Since(wallStart) }()
	admitted := make(map[FlowID]bool)
	for _, ev := range w.Events {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if !ev.Arrive {
			if admitted[ev.Flow.ID] {
				start := time.Now()
				if err := e.Release(ev.Flow.ID); err != nil {
					return st, err
				}
				st.Elapsed += time.Since(start)
				delete(admitted, ev.Flow.ID)
			}
			continue
		}
		st.Offered++
		dec, err := e.Admit(ctx, ev.Flow)
		if err != nil {
			return st, err
		}
		st.Elapsed += dec.Latency
		st.Latency.AddDuration(dec.Latency)
		if dec.Admitted {
			st.Admitted++
			admitted[ev.Flow.ID] = true
			for _, id := range dec.Preempted {
				// The engine no longer serves evicted flows; dropping them
				// here keeps their departures from Releasing unknown IDs.
				delete(admitted, id)
				st.Preempted++
			}
		} else {
			st.Rejected++
		}
		switch dec.Tier {
		case TierFast:
			st.Fast++
		case TierWarm:
			st.Warm++
		case TierCold:
			st.Cold++
		}
	}
	return st, nil
}
