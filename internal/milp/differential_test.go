package milp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestDifferentialWarmVsCold solves random integer programs with the default
// warm-started node relaxations (dual-simplex cleanup from the root basis)
// and with Options.ColdStart, and demands matching outcomes: same error
// class, same objective, and the same optimality proof. The two modes may
// pick different vertices of tied relaxations — and therefore different
// trees and node counts — so X is compared through a brute-force check of
// the objective instead of element-wise. Runs under -race from `make
// differential`.
func TestDifferentialWarmVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 80; trial++ {
		m := randomModel(t, rng)
		for _, firstFeasible := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				warm, warmErr := m.Solve(Options{Workers: workers, FirstFeasible: firstFeasible})
				cold, coldErr := m.Solve(Options{Workers: workers, FirstFeasible: firstFeasible, ColdStart: true})
				if (warmErr == nil) != (coldErr == nil) {
					t.Fatalf("trial %d ff=%v w=%d: warm err %v, cold err %v",
						trial, firstFeasible, workers, warmErr, coldErr)
				}
				if warmErr != nil {
					if !errors.Is(warmErr, ErrInfeasible) || !errors.Is(coldErr, ErrInfeasible) {
						t.Fatalf("trial %d ff=%v w=%d: error mismatch: warm %v, cold %v",
							trial, firstFeasible, workers, warmErr, coldErr)
					}
					infeasible++
					continue
				}
				feasible++
				if !firstFeasible && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
					t.Fatalf("trial %d w=%d: objective warm %g != cold %g",
						trial, workers, warm.Objective, cold.Objective)
				}
				if warm.Optimal != cold.Optimal {
					t.Fatalf("trial %d ff=%v w=%d: optimal warm %v != cold %v",
						trial, firstFeasible, workers, warm.Optimal, cold.Optimal)
				}
				checkIntegral(t, m, warm.X)
				checkIntegral(t, m, cold.X)
			}
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("weak coverage: %d feasible, %d infeasible outcomes", feasible, infeasible)
	}
}

// checkIntegral verifies a solution satisfies every row, bound, and
// integrality requirement of the model.
func checkIntegral(t *testing.T, m *Model, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range m.vars {
		if x[j] < -tol || x[j] > v.upper+tol {
			t.Fatalf("x[%d] = %g outside [0, %g]", j, x[j], v.upper)
		}
		if v.typ != Continuous && math.Abs(x[j]-math.Round(x[j])) > tol {
			t.Fatalf("x[%d] = %g not integral", j, x[j])
		}
	}
	for i, r := range m.rows {
		lhs := 0.0
		for k, jj := range r.Idx {
			lhs += r.Val[k] * x[jj]
		}
		bad := false
		switch r.Rel {
		case LE:
			bad = lhs > r.RHS+tol
		case GE:
			bad = lhs < r.RHS-tol
		case EQ:
			bad = math.Abs(lhs-r.RHS) > tol
		}
		if bad {
			t.Fatalf("row %d: %g %v %g violated by %v", i, lhs, r.Rel, r.RHS, x)
		}
	}
}

// TestDifferentialIncrementalMutation re-solves a model after SetRHS /
// SetCoef / SetUpper mutations and checks the result matches a model built
// from scratch with the mutated data — the incremental window search in
// internal/schedule depends on exactly this equivalence.
func TestDifferentialIncrementalMutation(t *testing.T) {
	build := func(win float64) (*Model, VarID, VarID, VarID, int, int) {
		m := NewModel(Minimize)
		sa, _ := m.AddVar("sa", Integer, win-1, 0)
		sb, _ := m.AddVar("sb", Integer, win-2, 0)
		o, _ := m.AddVar("o", Binary, 1, 0)
		// sb - sa - win*o >= 1 - win ; sa - sb + win*o >= 2
		r1, err := m.AddConstraintIdx([]VarID{sa, sb, o}, []float64{-1, 1, -win}, GE, 1-win)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m.AddConstraintIdx([]VarID{sa, sb, o}, []float64{1, -1, win}, GE, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m, sa, sb, o, r1, r2
	}
	for win := 3.0; win <= 6; win++ {
		// Mutate a model built at window 3 up to `win`.
		m, sa, sb, o, r1, r2 := build(3)
		if win != 3 {
			if err := m.SetUpper(sa, win-1); err != nil {
				t.Fatal(err)
			}
			if err := m.SetUpper(sb, win-2); err != nil {
				t.Fatal(err)
			}
			if err := m.SetCoef(r1, o, -win); err != nil {
				t.Fatal(err)
			}
			if err := m.SetRHS(r1, 1-win); err != nil {
				t.Fatal(err)
			}
			if err := m.SetCoef(r2, o, win); err != nil {
				t.Fatal(err)
			}
		}
		fresh, _, _, _, _, _ := build(win)
		mutSol, mutErr := m.Solve(Options{FirstFeasible: true, Workers: 1})
		freshSol, freshErr := fresh.Solve(Options{FirstFeasible: true, Workers: 1})
		if (mutErr == nil) != (freshErr == nil) {
			t.Fatalf("win %g: mutated err %v, fresh err %v", win, mutErr, freshErr)
		}
		if mutErr != nil {
			continue
		}
		for j := range mutSol.X {
			if mutSol.X[j] != freshSol.X[j] {
				t.Fatalf("win %g: X[%d] mutated %g != fresh %g", win, j, mutSol.X[j], freshSol.X[j])
			}
		}
	}
}

// TestDifferentialMutationSoak hammers one persistent model with 500 rounds
// of randomized SetUpper / SetRHS / SetCoef batches, pinning every round's
// solve against a model built from scratch with the same effective data. The
// admission engine in internal/admit keeps a model alive across thousands of
// mutations, so the single-edit equivalence above has to hold over arbitrary
// mutation histories too — any drift in the persistent row/bound state shows
// up here as a verdict or solution mismatch. Runs under -race from `make
// differential`.
func TestDifferentialMutationSoak(t *testing.T) {
	type shadowVar struct {
		typ   VarType
		upper float64
		obj   float64
	}
	type shadowRow struct {
		ids   []VarID
		coefs []float64
		rel   Rel
		rhs   float64
	}
	rng := rand.New(rand.NewSource(1905))

	// Fixed structure: six variables (two binary, the rest bounded integers)
	// and five rows whose sparsity patterns never change — exactly the shape
	// of mutation the incremental scheduler performs.
	vars := []shadowVar{
		{Integer, 5, 1}, {Integer, 4, -2}, {Integer, 6, 0},
		{Integer, 3, 2}, {Binary, 1, -1}, {Binary, 1, 3},
	}
	m := NewModel(Minimize)
	for j, v := range vars {
		id, err := m.AddVar(fmt.Sprintf("x%d", j), v.typ, v.upper, v.obj)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != j {
			t.Fatalf("var %d got id %d", j, id)
		}
	}
	rows := []shadowRow{
		{[]VarID{0, 1, 4}, []float64{1, 1, -3}, GE, 1},
		{[]VarID{1, 2, 5}, []float64{-1, 2, 4}, LE, 5},
		{[]VarID{0, 2, 3}, []float64{1, -1, 1}, GE, -2},
		{[]VarID{3, 4, 5}, []float64{2, 1, 1}, LE, 6},
		{[]VarID{0, 1, 2, 3}, []float64{1, 1, 1, 1}, GE, 2},
	}
	for i, r := range rows {
		ri, err := m.AddConstraintIdx(r.ids, r.coefs, r.rel, r.rhs)
		if err != nil {
			t.Fatal(err)
		}
		if ri != i {
			t.Fatalf("row %d got index %d", i, ri)
		}
	}

	rounds := 500
	if testing.Short() {
		rounds = 100
	}
	opts := Options{FirstFeasible: true, Workers: 1}
	feasible, infeasible := 0, 0
	for round := 0; round < rounds; round++ {
		// Each round applies a random batch of 1-4 mutations to both the
		// persistent model and the shadow data.
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // SetUpper on a non-binary variable.
				j := rng.Intn(4)
				up := float64(rng.Intn(8))
				if err := m.SetUpper(VarID(j), up); err != nil {
					t.Fatalf("round %d: SetUpper: %v", round, err)
				}
				vars[j].upper = up
			case 1: // SetRHS on any row.
				i := rng.Intn(len(rows))
				rhs := float64(rng.Intn(17) - 8)
				if err := m.SetRHS(i, rhs); err != nil {
					t.Fatalf("round %d: SetRHS: %v", round, err)
				}
				rows[i].rhs = rhs
			case 2: // SetCoef on an existing sparsity entry.
				i := rng.Intn(len(rows))
				k := rng.Intn(len(rows[i].ids))
				c := float64(rng.Intn(9) - 4)
				if c == 0 {
					c = 1
				}
				if err := m.SetCoef(i, rows[i].ids[k], c); err != nil {
					t.Fatalf("round %d: SetCoef: %v", round, err)
				}
				rows[i].coefs[k] = c
			}
		}
		// Oracle: a model built from scratch with the current shadow data.
		fresh := NewModel(Minimize)
		for j, v := range vars {
			if _, err := fresh.AddVar(fmt.Sprintf("x%d", j), v.typ, v.upper, v.obj); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range rows {
			if _, err := fresh.AddConstraintIdx(r.ids, r.coefs, r.rel, r.rhs); err != nil {
				t.Fatal(err)
			}
		}
		mutSol, mutErr := m.Solve(opts)
		freshSol, freshErr := fresh.Solve(opts)
		if (mutErr == nil) != (freshErr == nil) {
			t.Fatalf("round %d: mutated err %v, fresh err %v", round, mutErr, freshErr)
		}
		if mutErr != nil {
			if !errors.Is(mutErr, ErrInfeasible) || !errors.Is(freshErr, ErrInfeasible) {
				t.Fatalf("round %d: error class mismatch: mutated %v, fresh %v", round, mutErr, freshErr)
			}
			infeasible++
			continue
		}
		feasible++
		for j := range mutSol.X {
			if mutSol.X[j] != freshSol.X[j] {
				t.Fatalf("round %d: X[%d] mutated %g != fresh %g", round, j, mutSol.X[j], freshSol.X[j])
			}
		}
		checkIntegral(t, fresh, mutSol.X)
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("weak coverage: %d feasible, %d infeasible rounds", feasible, infeasible)
	}
}
