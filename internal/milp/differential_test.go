package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestDifferentialWarmVsCold solves random integer programs with the default
// warm-started node relaxations (dual-simplex cleanup from the root basis)
// and with Options.ColdStart, and demands matching outcomes: same error
// class, same objective, and the same optimality proof. The two modes may
// pick different vertices of tied relaxations — and therefore different
// trees and node counts — so X is compared through a brute-force check of
// the objective instead of element-wise. Runs under -race from `make
// differential`.
func TestDifferentialWarmVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 80; trial++ {
		m := randomModel(t, rng)
		for _, firstFeasible := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				warm, warmErr := m.Solve(Options{Workers: workers, FirstFeasible: firstFeasible})
				cold, coldErr := m.Solve(Options{Workers: workers, FirstFeasible: firstFeasible, ColdStart: true})
				if (warmErr == nil) != (coldErr == nil) {
					t.Fatalf("trial %d ff=%v w=%d: warm err %v, cold err %v",
						trial, firstFeasible, workers, warmErr, coldErr)
				}
				if warmErr != nil {
					if !errors.Is(warmErr, ErrInfeasible) || !errors.Is(coldErr, ErrInfeasible) {
						t.Fatalf("trial %d ff=%v w=%d: error mismatch: warm %v, cold %v",
							trial, firstFeasible, workers, warmErr, coldErr)
					}
					infeasible++
					continue
				}
				feasible++
				if !firstFeasible && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
					t.Fatalf("trial %d w=%d: objective warm %g != cold %g",
						trial, workers, warm.Objective, cold.Objective)
				}
				if warm.Optimal != cold.Optimal {
					t.Fatalf("trial %d ff=%v w=%d: optimal warm %v != cold %v",
						trial, firstFeasible, workers, warm.Optimal, cold.Optimal)
				}
				checkIntegral(t, m, warm.X)
				checkIntegral(t, m, cold.X)
			}
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("weak coverage: %d feasible, %d infeasible outcomes", feasible, infeasible)
	}
}

// checkIntegral verifies a solution satisfies every row, bound, and
// integrality requirement of the model.
func checkIntegral(t *testing.T, m *Model, x []float64) {
	t.Helper()
	const tol = 1e-6
	for j, v := range m.vars {
		if x[j] < -tol || x[j] > v.upper+tol {
			t.Fatalf("x[%d] = %g outside [0, %g]", j, x[j], v.upper)
		}
		if v.typ != Continuous && math.Abs(x[j]-math.Round(x[j])) > tol {
			t.Fatalf("x[%d] = %g not integral", j, x[j])
		}
	}
	for i, r := range m.rows {
		lhs := 0.0
		for k, jj := range r.Idx {
			lhs += r.Val[k] * x[jj]
		}
		bad := false
		switch r.Rel {
		case LE:
			bad = lhs > r.RHS+tol
		case GE:
			bad = lhs < r.RHS-tol
		case EQ:
			bad = math.Abs(lhs-r.RHS) > tol
		}
		if bad {
			t.Fatalf("row %d: %g %v %g violated by %v", i, lhs, r.Rel, r.RHS, x)
		}
	}
}

// TestDifferentialIncrementalMutation re-solves a model after SetRHS /
// SetCoef / SetUpper mutations and checks the result matches a model built
// from scratch with the mutated data — the incremental window search in
// internal/schedule depends on exactly this equivalence.
func TestDifferentialIncrementalMutation(t *testing.T) {
	build := func(win float64) (*Model, VarID, VarID, VarID, int, int) {
		m := NewModel(Minimize)
		sa, _ := m.AddVar("sa", Integer, win-1, 0)
		sb, _ := m.AddVar("sb", Integer, win-2, 0)
		o, _ := m.AddVar("o", Binary, 1, 0)
		// sb - sa - win*o >= 1 - win ; sa - sb + win*o >= 2
		r1, err := m.AddConstraintIdx([]VarID{sa, sb, o}, []float64{-1, 1, -win}, GE, 1-win)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m.AddConstraintIdx([]VarID{sa, sb, o}, []float64{1, -1, win}, GE, 2)
		if err != nil {
			t.Fatal(err)
		}
		return m, sa, sb, o, r1, r2
	}
	for win := 3.0; win <= 6; win++ {
		// Mutate a model built at window 3 up to `win`.
		m, sa, sb, o, r1, r2 := build(3)
		if win != 3 {
			if err := m.SetUpper(sa, win-1); err != nil {
				t.Fatal(err)
			}
			if err := m.SetUpper(sb, win-2); err != nil {
				t.Fatal(err)
			}
			if err := m.SetCoef(r1, o, -win); err != nil {
				t.Fatal(err)
			}
			if err := m.SetRHS(r1, 1-win); err != nil {
				t.Fatal(err)
			}
			if err := m.SetCoef(r2, o, win); err != nil {
				t.Fatal(err)
			}
		}
		fresh, _, _, _, _, _ := build(win)
		mutSol, mutErr := m.Solve(Options{FirstFeasible: true, Workers: 1})
		freshSol, freshErr := fresh.Solve(Options{FirstFeasible: true, Workers: 1})
		if (mutErr == nil) != (freshErr == nil) {
			t.Fatalf("win %g: mutated err %v, fresh err %v", win, mutErr, freshErr)
		}
		if mutErr != nil {
			continue
		}
		for j := range mutSol.X {
			if mutSol.X[j] != freshSol.X[j] {
				t.Fatalf("win %g: X[%d] mutated %g != fresh %g", win, j, mutSol.X[j], freshSol.X[j])
			}
		}
	}
}
