package milp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsackBinary(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2 (binary) -> a,b = 1: 16.
	m := NewModel(Maximize)
	a, err := m.AddVar("a", Binary, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddVar("b", Binary, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.AddVar("c", Binary, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{a: 1, b: 1, c: 1}, LE, 2); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approx(s.Objective, 16) {
		t.Errorf("objective = %g, want 16", s.Objective)
	}
	if !s.Optimal {
		t.Error("solution not proved optimal")
	}
	if !approx(s.X[a], 1) || !approx(s.X[b], 1) || !approx(s.X[c], 0) {
		t.Errorf("x = %v, want [1 1 0]", s.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5).
	m := NewModel(Maximize)
	x, err := m.AddVar("x", Integer, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 2}, LE, 7); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approx(s.X[x], 3) {
		t.Errorf("x = %g, want 3", s.X[x])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x + y <= 3.5; x <= 2.
	// Optimal: x=2, y=1.5, obj=5.5.
	m := NewModel(Maximize)
	x, err := m.AddVar("x", Integer, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.AddVar("y", Continuous, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 1, y: 1}, LE, 3.5); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approx(s.Objective, 5.5) {
		t.Errorf("objective = %g, want 5.5", s.Objective)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer: LP feasible, no integer point.
	m := NewModel(Minimize)
	x, err := m.AddVar("x", Integer, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 1}, GE, 0.4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel(Minimize)
	x, err := m.AddVar("x", Binary, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestFirstFeasibleStopsEarly(t *testing.T) {
	// Feasibility problem: binary x,y with x + y = 1.
	m := NewModel(Minimize)
	x, err := m.AddVar("x", Binary, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.AddVar("y", Binary, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 1, y: 1}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	s, err := m.Solve(Options{FirstFeasible: true})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approx(s.X[x]+s.X[y], 1) {
		t.Errorf("x+y = %g, want 1", s.X[x]+s.X[y])
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, with MaxNodes=1: no incumbent possible.
	m := NewModel(Maximize)
	x, err := m.AddVar("x", Integer, math.Inf(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddConstraint(map[VarID]float64{x: 2}, LE, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(Options{MaxNodes: 1}); !errors.Is(err, ErrLimit) {
		t.Errorf("got %v, want ErrLimit", err)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	// Tiny time limit on a non-trivial problem must return quickly.
	m := NewModel(Maximize)
	n := 18
	ids := make([]VarID, n)
	coef := make(map[VarID]float64, n)
	for i := 0; i < n; i++ {
		v, err := m.AddVar("x", Binary, 1, float64(i%7+1))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = v
		coef[v] = float64(i%5 + 1)
	}
	if err := m.AddConstraint(coef, LE, 7.5); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := m.Solve(Options{TimeLimit: time.Millisecond})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Solve took %v with a 1ms time limit", elapsed)
	}
	// Either it finished optimally in time, or hit the limit; both fine.
	if err != nil && !errors.Is(err, ErrLimit) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGraphColoringStyle(t *testing.T) {
	// Minimum slots for a triangle of mutually conflicting unit demands
	// equals 3: model as assignment of 3 links to 3 slots, minimize used
	// slots. x[l][s] binary, y[s] binary; each link in exactly one slot;
	// conflicting links not in the same slot; x[l][s] <= y[s].
	const L, S = 3, 3
	m := NewModel(Minimize)
	var x [L][S]VarID
	var y [S]VarID
	for s := 0; s < S; s++ {
		v, err := m.AddVar("y", Binary, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		y[s] = v
	}
	for l := 0; l < L; l++ {
		coef := make(map[VarID]float64)
		for s := 0; s < S; s++ {
			v, err := m.AddVar("x", Binary, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			x[l][s] = v
			coef[v] = 1
			if err := m.AddConstraint(map[VarID]float64{v: 1, y[s]: -1}, LE, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.AddConstraint(coef, EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	// All pairs conflict.
	for a := 0; a < L; a++ {
		for b := a + 1; b < L; b++ {
			for s := 0; s < S; s++ {
				if err := m.AddConstraint(map[VarID]float64{x[a][s]: 1, x[b][s]: 1}, LE, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !approx(sol.Objective, 3) {
		t.Errorf("min slots = %g, want 3", sol.Objective)
	}
}

func TestValidation(t *testing.T) {
	m := NewModel(Minimize)
	if _, err := m.AddVar("bad", VarType(0), 1, 0); err == nil {
		t.Error("bad var type accepted")
	}
	if _, err := m.AddVar("neg", Continuous, -2, 0); err == nil {
		t.Error("negative upper bound accepted")
	}
	if err := m.AddConstraint(map[VarID]float64{5: 1}, LE, 0); err == nil {
		t.Error("out-of-range constraint variable accepted")
	}
}

func TestDescribeAndVarName(t *testing.T) {
	m := NewModel(Minimize)
	v, err := m.AddVar("order_1_2", Binary, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.VarName(v); got != "order_1_2" {
		t.Errorf("VarName = %q", got)
	}
	if got := m.VarName(99); got == "order_1_2" {
		t.Errorf("VarName(99) = %q", got)
	}
	if m.Describe() == "" {
		t.Error("Describe empty")
	}
}

// Property: branch-and-bound on random small binary knapsacks matches brute
// force.
func TestPropertyMatchesBruteForce(t *testing.T) {
	prop := func(w0, w1, w2, w3, p0, p1, p2, p3, cap uint8) bool {
		weights := []float64{float64(w0%9 + 1), float64(w1%9 + 1), float64(w2%9 + 1), float64(w3%9 + 1)}
		profits := []float64{float64(p0%9 + 1), float64(p1%9 + 1), float64(p2%9 + 1), float64(p3%9 + 1)}
		capacity := float64(cap%20 + 1)

		m := NewModel(Maximize)
		ids := make([]VarID, 4)
		coef := make(map[VarID]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := m.AddVar("x", Binary, 1, profits[i])
			if err != nil {
				return false
			}
			ids[i] = v
			coef[v] = weights[i]
		}
		if err := m.AddConstraint(coef, LE, capacity); err != nil {
			return false
		}
		sol, err := m.Solve(Options{})
		if err != nil {
			return false
		}

		best := 0.0
		for mask := 0; mask < 16; mask++ {
			w, p := 0.0, 0.0
			for i := 0; i < 4; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					p += profits[i]
				}
			}
			if w <= capacity && p > best {
				best = p
			}
		}
		return approx(sol.Objective, best)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
