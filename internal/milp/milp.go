// Package milp implements a mixed-integer linear program solver:
// branch-and-bound over the LP relaxation provided by internal/lp.
//
// It targets the binary programs of TDMA schedule optimization
// (transmission-order variables, slot-feasibility tests), which are small but
// need exact answers. All variables have lower bound 0; integer variables
// branch by adding bound rows.
package milp

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"wimesh/internal/lp"
)

// VarType classifies a model variable.
type VarType int

// Variable types.
const (
	Continuous VarType = iota + 1
	Integer
	Binary
)

// Sense re-exports the optimization direction.
type Sense = lp.Sense

// Optimization directions.
const (
	Minimize = lp.Minimize
	Maximize = lp.Maximize
)

// Rel re-exports constraint relations.
type Rel = lp.Rel

// Constraint relations.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("milp: infeasible")
	ErrLimit      = errors.New("milp: search limit reached without a feasible solution")
)

// VarID identifies a model variable.
type VarID int

type variable struct {
	name    string
	typ     VarType
	upper   float64
	objCoef float64
}

type row struct {
	coef map[VarID]float64
	rel  Rel
	rhs  float64
}

// Model is a MILP under construction.
type Model struct {
	sense Sense
	vars  []variable
	rows  []row
}

// NewModel returns an empty model with the given optimization direction.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// AddVar adds a variable with bounds [0, upper] (upper may be +Inf for
// continuous/integer; Binary forces [0,1]) and the given objective
// coefficient. The name is used in diagnostics only.
func (m *Model) AddVar(name string, typ VarType, upper, objCoef float64) (VarID, error) {
	switch typ {
	case Binary:
		upper = 1
	case Continuous, Integer:
		if upper < 0 {
			return 0, fmt.Errorf("milp: negative upper bound %g for %q", upper, name)
		}
	default:
		return 0, fmt.Errorf("milp: bad variable type %d for %q", int(typ), name)
	}
	id := VarID(len(m.vars))
	m.vars = append(m.vars, variable{name: name, typ: typ, upper: upper, objCoef: objCoef})
	return id, nil
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraint rows.
func (m *Model) NumConstraints() int { return len(m.rows) }

// AddConstraint adds the row coef . x rel rhs.
func (m *Model) AddConstraint(coef map[VarID]float64, rel Rel, rhs float64) error {
	cp := make(map[VarID]float64, len(coef))
	for v, c := range coef {
		if v < 0 || int(v) >= len(m.vars) {
			return fmt.Errorf("milp: constraint variable %d out of range", v)
		}
		if c != 0 {
			cp[v] = c
		}
	}
	m.rows = append(m.rows, row{coef: cp, rel: rel, rhs: rhs})
	return nil
}

// Options bounds the branch-and-bound search.
type Options struct {
	// MaxNodes limits explored nodes (0 = 1e6 default).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// FirstFeasible stops at the first integral solution (feasibility
	// problems).
	FirstFeasible bool
	// IntTol is the integrality tolerance (0 = 1e-6 default).
	IntTol float64
	// Workers is the number of goroutines exploring the branch-and-bound
	// tree (0 = GOMAXPROCS). The result is deterministic regardless of the
	// worker count: ties between equally good solutions are broken by the
	// branch path, so any exploration schedule converges to the same
	// incumbent as the sequential search.
	Workers int
}

// Solution is the result of a Solve call.
type Solution struct {
	X         []float64
	Objective float64
	// Optimal reports that the search proved optimality (or, with
	// FirstFeasible, found an integral solution).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// branch is one bound added on the path to a node: variable v rel value.
type branch struct {
	v   VarID
	rel Rel
	val float64
}

// node is one open subproblem of the branch-and-bound tree.
type node struct {
	branches []branch
	// key encodes the branch path from the root, one byte per level: 0 for
	// the child the sequential search explores first, 1 for the other.
	// Sequential DFS visits nodes in ascending key order (bytes.Compare,
	// prefixes first), so breaking incumbent ties by smallest key makes any
	// exploration schedule — including a parallel one — converge to the
	// exact incumbent the sequential search would return.
	key []byte
}

// search is the shared state of one Solve call: the worker pool's work
// stack, the incumbent, and the limit bookkeeping.
type search struct {
	m             *Model
	proto         *lp.Problem // relaxation prototype, cloned per node
	sign          float64     // minimization-form multiplier
	firstFeasible bool
	intTol        float64
	maxNodes      int
	deadline      time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	stack    []node // LIFO: DFS order when sequential
	active   int    // workers currently expanding a node
	stopped  bool   // a limit was hit or a worker failed
	limitHit bool
	err      error
	nodes    int // LP relaxations solved

	incumbent    []float64
	incumbentObj float64 // minimization form
	incumbentKey []byte
	haveInc      bool
}

// Solve runs branch-and-bound and returns the best integral solution. It
// returns ErrInfeasible if no integral solution exists, or ErrLimit if
// limits were exhausted before one was found.
//
// With Options.Workers > 1 the tree is explored by a worker pool sharing the
// incumbent; the result is identical to the sequential search (see node.key).
func (m *Model) Solve(opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	proto, err := m.relaxationPrototype()
	if err != nil {
		return nil, err
	}
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	s := &search{
		m:             m,
		proto:         proto,
		sign:          sign,
		firstFeasible: opts.FirstFeasible,
		intTol:        intTol,
		maxNodes:      maxNodes,
		deadline:      deadline,
		stack:         []node{{}},
		incumbentObj:  math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.run()
		}()
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	if s.incumbent == nil {
		if s.limitHit {
			return nil, fmt.Errorf("%w (nodes=%d)", ErrLimit, s.nodes)
		}
		return nil, ErrInfeasible
	}
	obj := 0.0
	for j, v := range m.vars {
		obj += v.objCoef * s.incumbent[j]
	}
	return &Solution{X: s.incumbent, Objective: obj, Optimal: !s.limitHit, Nodes: s.nodes}, nil
}

// run is one pool worker: pop a node, expand it, push its children, until
// the tree is exhausted or a limit fires.
func (s *search) run() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.stack) == 0 && s.active > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || len(s.stack) == 0 {
			s.cond.Broadcast()
			return
		}
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]

		// A feasibility search only cares about solutions on branch paths
		// before the incumbent's; drop later ones without an LP solve (this
		// is also what keeps the sequential node count identical to the
		// old early-exit behaviour: every node after the incumbent prunes
		// here).
		if s.firstFeasible && s.haveInc && bytes.Compare(cur.key, s.incumbentKey) >= 0 {
			continue
		}
		if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			s.limitHit = true
			s.stopped = true
			s.cond.Broadcast()
			return
		}
		s.nodes++
		s.active++
		s.mu.Unlock()

		children, err := s.expand(cur)

		s.mu.Lock()
		s.active--
		if err != nil && s.err == nil {
			s.err = err
			s.stopped = true
		}
		s.stack = append(s.stack, children...)
		s.cond.Broadcast()
	}
}

// expand solves a node's relaxation and returns its children (nil when the
// node is pruned, infeasible, or integral). Children are ordered so the
// sequentially-preferred child is popped first from the LIFO stack.
func (s *search) expand(cur node) ([]node, error) {
	sol, err := s.solveNode(cur.branches)
	if errors.Is(err, lp.ErrInfeasible) {
		return nil, nil
	}
	if errors.Is(err, lp.ErrUnbounded) {
		// An unbounded relaxation of an integer problem: treat as an error
		// since our scheduling models are bounded.
		return nil, fmt.Errorf("milp: relaxation unbounded: %w", err)
	}
	if err != nil {
		return nil, fmt.Errorf("milp: relaxation: %w", err)
	}
	bound := s.sign * sol.Objective

	s.mu.Lock()
	prune := s.prunedLocked(bound, cur.key)
	s.mu.Unlock()
	if prune {
		return nil, nil
	}

	fracVar, fracVal := s.m.mostFractional(sol.X, s.intTol)
	if fracVar == -1 {
		// Integral: candidate incumbent.
		x := roundIntegral(s.m, sol.X, s.intTol)
		s.mu.Lock()
		if s.acceptsLocked(bound, cur.key) {
			s.incumbent, s.incumbentObj = x, bound
			s.incumbentKey, s.haveInc = cur.key, true
		}
		s.mu.Unlock()
		return nil, nil
	}
	// Branch. floor child: x <= floor(v); ceil child: x >= ceil(v). The
	// child nearer the fractional value is preferred (key byte 0) and goes
	// last so the LIFO pops it first.
	floorB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: LE, val: math.Floor(fracVal)})
	ceilB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: GE, val: math.Ceil(fracVal)})
	preferred := append(append([]byte(nil), cur.key...), 0)
	other := append(append([]byte(nil), cur.key...), 1)
	if fracVal-math.Floor(fracVal) < 0.5 {
		return []node{{branches: ceilB, key: other}, {branches: floorB, key: preferred}}, nil
	}
	return []node{{branches: floorB, key: other}, {branches: ceilB, key: preferred}}, nil
}

// prunedLocked reports whether a solved node's subtree can no longer beat
// the incumbent. Callers hold s.mu.
func (s *search) prunedLocked(bound float64, key []byte) bool {
	if !s.haveInc {
		return false
	}
	if s.firstFeasible {
		// No bound pruning: any integral solution on an earlier branch path
		// wins regardless of objective.
		return bytes.Compare(key, s.incumbentKey) >= 0
	}
	if bound < s.incumbentObj-1e-9 {
		return false
	}
	// Objective tied (or worse): the subtree can only supply an incumbent
	// via the key tie-break, possible only on an earlier branch path.
	return !(bound <= s.incumbentObj+1e-9 && bytes.Compare(key, s.incumbentKey) < 0)
}

// acceptsLocked reports whether an integral solution (bound, key) replaces
// the incumbent: better objective first, then earlier branch path. Callers
// hold s.mu.
func (s *search) acceptsLocked(bound float64, key []byte) bool {
	if !s.haveInc {
		return true
	}
	if s.firstFeasible {
		return bytes.Compare(key, s.incumbentKey) < 0
	}
	if bound < s.incumbentObj-1e-9 {
		return true
	}
	return bound <= s.incumbentObj+1e-9 && bytes.Compare(key, s.incumbentKey) < 0
}

// relaxationPrototype builds the LP relaxation of the model without any
// branch bounds; the search clones it per node instead of rebuilding the
// rows (and re-copying every coefficient map) on each of the thousands of
// relaxations a search solves.
func (m *Model) relaxationPrototype() (*lp.Problem, error) {
	p := lp.NewProblem(m.sense, len(m.vars))
	for j, v := range m.vars {
		if v.objCoef != 0 {
			if err := p.SetObjCoef(j, v.objCoef); err != nil {
				return nil, err
			}
		}
		if !math.IsInf(v.upper, 1) {
			if err := p.SetUpper(j, v.upper); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range m.rows {
		coef := make(map[int]float64, len(r.coef))
		for v, c := range r.coef {
			coef[int(v)] = c
		}
		if err := p.AddConstraint(coef, r.rel, r.rhs); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// solveNode clones the relaxation prototype, applies a node's branch bounds
// (upper bounds tightened in place, lower bounds as GE rows), and solves it.
func (s *search) solveNode(branches []branch) (*lp.Solution, error) {
	p := s.proto.Clone()
	for _, b := range branches {
		switch b.rel {
		case LE:
			if b.val < p.Upper(int(b.v)) {
				if b.val < 0 {
					return nil, lp.ErrInfeasible
				}
				if err := p.SetUpper(int(b.v), b.val); err != nil {
					return nil, err
				}
			}
		case GE:
			if err := p.AddConstraint(map[int]float64{int(b.v): 1}, lp.GE, b.val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("milp: bad branch relation %v", b.rel)
		}
	}
	return p.Solve()
}

// mostFractional returns the integer variable with value farthest from an
// integer, or -1 if all integer variables are integral within tol.
func (m *Model) mostFractional(x []float64, tol float64) (VarID, float64) {
	best, bestDist := VarID(-1), tol
	for j, v := range m.vars {
		if v.typ == Continuous {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = VarID(j), dist
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, x[best]
}

func roundIntegral(m *Model, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, v := range m.vars {
		if v.typ != Continuous {
			out[j] = math.Round(out[j])
		}
	}
	_ = tol
	return out
}

// VarName returns the name of a variable (diagnostics).
func (m *Model) VarName(v VarID) string {
	if v < 0 || int(v) >= len(m.vars) {
		return fmt.Sprintf("var(%d)", int(v))
	}
	return m.vars[v].name
}

// Describe returns a human-readable summary of the model size.
func (m *Model) Describe() string {
	nBin, nInt := 0, 0
	for _, v := range m.vars {
		switch v.typ {
		case Binary:
			nBin++
		case Integer:
			nInt++
		}
	}
	return fmt.Sprintf("milp: %d vars (%d binary, %d integer), %d constraints",
		len(m.vars), nBin, nInt, len(m.rows))
}

// SortedVarIDs returns all variable IDs ascending (test helper convenience).
func (m *Model) SortedVarIDs() []VarID {
	out := make([]VarID, len(m.vars))
	for i := range out {
		out[i] = VarID(i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
