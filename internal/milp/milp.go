// Package milp implements a mixed-integer linear program solver:
// branch-and-bound over the LP relaxation provided by internal/lp.
//
// It targets the binary programs of TDMA schedule optimization
// (transmission-order variables, slot-feasibility tests), which are small but
// need exact answers. All variables have lower bound 0; integer variables
// branch by adding bound rows.
package milp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"wimesh/internal/lp"
)

// VarType classifies a model variable.
type VarType int

// Variable types.
const (
	Continuous VarType = iota + 1
	Integer
	Binary
)

// Sense re-exports the optimization direction.
type Sense = lp.Sense

// Optimization directions.
const (
	Minimize = lp.Minimize
	Maximize = lp.Maximize
)

// Rel re-exports constraint relations.
type Rel = lp.Rel

// Constraint relations.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("milp: infeasible")
	ErrLimit      = errors.New("milp: search limit reached without a feasible solution")
)

// VarID identifies a model variable.
type VarID int

type variable struct {
	name    string
	typ     VarType
	upper   float64
	objCoef float64
}

type row struct {
	coef map[VarID]float64
	rel  Rel
	rhs  float64
}

// Model is a MILP under construction.
type Model struct {
	sense Sense
	vars  []variable
	rows  []row
}

// NewModel returns an empty model with the given optimization direction.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// AddVar adds a variable with bounds [0, upper] (upper may be +Inf for
// continuous/integer; Binary forces [0,1]) and the given objective
// coefficient. The name is used in diagnostics only.
func (m *Model) AddVar(name string, typ VarType, upper, objCoef float64) (VarID, error) {
	switch typ {
	case Binary:
		upper = 1
	case Continuous, Integer:
		if upper < 0 {
			return 0, fmt.Errorf("milp: negative upper bound %g for %q", upper, name)
		}
	default:
		return 0, fmt.Errorf("milp: bad variable type %d for %q", int(typ), name)
	}
	id := VarID(len(m.vars))
	m.vars = append(m.vars, variable{name: name, typ: typ, upper: upper, objCoef: objCoef})
	return id, nil
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraint rows.
func (m *Model) NumConstraints() int { return len(m.rows) }

// AddConstraint adds the row coef . x rel rhs.
func (m *Model) AddConstraint(coef map[VarID]float64, rel Rel, rhs float64) error {
	cp := make(map[VarID]float64, len(coef))
	for v, c := range coef {
		if v < 0 || int(v) >= len(m.vars) {
			return fmt.Errorf("milp: constraint variable %d out of range", v)
		}
		if c != 0 {
			cp[v] = c
		}
	}
	m.rows = append(m.rows, row{coef: cp, rel: rel, rhs: rhs})
	return nil
}

// Options bounds the branch-and-bound search.
type Options struct {
	// MaxNodes limits explored nodes (0 = 1e6 default).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// FirstFeasible stops at the first integral solution (feasibility
	// problems).
	FirstFeasible bool
	// IntTol is the integrality tolerance (0 = 1e-6 default).
	IntTol float64
}

// Solution is the result of a Solve call.
type Solution struct {
	X         []float64
	Objective float64
	// Optimal reports that the search proved optimality (or, with
	// FirstFeasible, found an integral solution).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// branch is one bound added on the path to a node: variable v rel value.
type branch struct {
	v   VarID
	rel Rel
	val float64
}

type node struct {
	branches []branch
	bound    float64 // LP relaxation objective, in minimization form
}

// Solve runs branch-and-bound and returns the best integral solution. It
// returns ErrInfeasible if no integral solution exists, or ErrLimit if
// limits were exhausted before one was found.
func (m *Model) Solve(opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}

	// Minimization form multiplier for bounds comparisons.
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1) // minimization form
		nodes        int
		provedOpt    = true
	)

	// DFS stack seeded with the root; DFS keeps memory bounded and finds
	// incumbents quickly, which matters for feasibility-style problems.
	stack := []node{{}}
	for len(stack) > 0 {
		if nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			provedOpt = false
			break
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		sol, err := m.solveRelaxation(cur.branches)
		if errors.Is(err, lp.ErrInfeasible) {
			continue
		}
		if errors.Is(err, lp.ErrUnbounded) {
			// An unbounded relaxation at the root of an integer problem:
			// treat as an error since our scheduling models are bounded.
			return nil, fmt.Errorf("milp: relaxation unbounded: %w", err)
		}
		if err != nil {
			return nil, fmt.Errorf("milp: relaxation: %w", err)
		}
		bound := sign * sol.Objective
		if bound >= incumbentObj-1e-9 {
			continue // pruned by bound
		}
		fracVar, fracVal := m.mostFractional(sol.X, intTol)
		if fracVar == -1 {
			// Integral: new incumbent.
			incumbent = roundIntegral(m, sol.X, intTol)
			incumbentObj = bound
			if opts.FirstFeasible {
				break
			}
			continue
		}
		// Branch: explore the "round toward incumbent-friendly" side last so
		// it pops first (DFS). floor branch: x <= floor(v); ceil branch:
		// x >= ceil(v).
		floorB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: LE, val: math.Floor(fracVal)})
		ceilB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: GE, val: math.Ceil(fracVal)})
		if fracVal-math.Floor(fracVal) < 0.5 {
			stack = append(stack, node{branches: ceilB}, node{branches: floorB})
		} else {
			stack = append(stack, node{branches: floorB}, node{branches: ceilB})
		}
	}

	if incumbent == nil {
		if provedOpt {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("%w (nodes=%d)", ErrLimit, nodes)
	}
	obj := 0.0
	for j, v := range m.vars {
		obj += v.objCoef * incumbent[j]
	}
	return &Solution{X: incumbent, Objective: obj, Optimal: provedOpt, Nodes: nodes}, nil
}

// solveRelaxation builds and solves the LP relaxation with the node's branch
// bounds applied.
func (m *Model) solveRelaxation(branches []branch) (*lp.Solution, error) {
	p := lp.NewProblem(m.sense, len(m.vars))
	for j, v := range m.vars {
		if v.objCoef != 0 {
			if err := p.SetObjCoef(j, v.objCoef); err != nil {
				return nil, err
			}
		}
		if !math.IsInf(v.upper, 1) {
			if err := p.SetUpper(j, v.upper); err != nil {
				return nil, err
			}
		}
	}
	for _, r := range m.rows {
		coef := make(map[int]float64, len(r.coef))
		for v, c := range r.coef {
			coef[int(v)] = c
		}
		if err := p.AddConstraint(coef, r.rel, r.rhs); err != nil {
			return nil, err
		}
	}
	// Branch bounds. Tighten upper bounds directly; lower bounds become GE
	// rows.
	for _, b := range branches {
		switch b.rel {
		case LE:
			u := p.Upper(int(b.v))
			if b.val < u {
				if b.val < 0 {
					return nil, lp.ErrInfeasible
				}
				if err := p.SetUpper(int(b.v), b.val); err != nil {
					return nil, err
				}
			}
		case GE:
			if err := p.AddConstraint(map[int]float64{int(b.v): 1}, lp.GE, b.val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("milp: bad branch relation %v", b.rel)
		}
	}
	return p.Solve()
}

// mostFractional returns the integer variable with value farthest from an
// integer, or -1 if all integer variables are integral within tol.
func (m *Model) mostFractional(x []float64, tol float64) (VarID, float64) {
	best, bestDist := VarID(-1), tol
	for j, v := range m.vars {
		if v.typ == Continuous {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = VarID(j), dist
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, x[best]
}

func roundIntegral(m *Model, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, v := range m.vars {
		if v.typ != Continuous {
			out[j] = math.Round(out[j])
		}
	}
	_ = tol
	return out
}

// VarName returns the name of a variable (diagnostics).
func (m *Model) VarName(v VarID) string {
	if v < 0 || int(v) >= len(m.vars) {
		return fmt.Sprintf("var(%d)", int(v))
	}
	return m.vars[v].name
}

// Describe returns a human-readable summary of the model size.
func (m *Model) Describe() string {
	nBin, nInt := 0, 0
	for _, v := range m.vars {
		switch v.typ {
		case Binary:
			nBin++
		case Integer:
			nInt++
		}
	}
	return fmt.Sprintf("milp: %d vars (%d binary, %d integer), %d constraints",
		len(m.vars), nBin, nInt, len(m.rows))
}

// SortedVarIDs returns all variable IDs ascending (test helper convenience).
func (m *Model) SortedVarIDs() []VarID {
	out := make([]VarID, len(m.vars))
	for i := range out {
		out[i] = VarID(i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
