// Package milp implements a mixed-integer linear program solver:
// branch-and-bound over the LP relaxation provided by internal/lp.
//
// It targets the binary programs of TDMA schedule optimization
// (transmission-order variables, slot-feasibility tests), which are small but
// need exact answers. All variables have lower bound 0; integer variables
// branch by tightening bounds, so every branch-and-bound node shares the
// root's constraint matrix and differs only in variable bounds. That lets
// each node re-solve with a warm-started dual simplex from its parent's
// basis snapshot — one new bound to clean up, typically a handful of pivots —
// instead of two phases from scratch. A node's relaxation is a pure function
// of its parent's snapshot and its own branch, and the root is solved cold,
// so by induction every snapshot is bit-identical no matter which worker
// produced it and the parallel search stays deterministic.
package milp

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"wimesh/internal/lp"
	"wimesh/internal/obs"
)

// VarType classifies a model variable.
type VarType int

// Variable types.
const (
	Continuous VarType = iota + 1
	Integer
	Binary
)

// Sense re-exports the optimization direction.
type Sense = lp.Sense

// Optimization directions.
const (
	Minimize = lp.Minimize
	Maximize = lp.Maximize
)

// Rel re-exports constraint relations.
type Rel = lp.Rel

// Constraint relations.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("milp: infeasible")
	ErrLimit      = errors.New("milp: search limit reached without a feasible solution")
)

// VarID identifies a model variable.
type VarID int

type variable struct {
	name    string
	typ     VarType
	upper   float64
	objCoef float64
}

// Model is a MILP under construction. Constraint rows are stored in the
// sparse lp.Row form; AddConstraintIdx, SetCoef, SetRHS, and SetUpper allow
// re-solving a structurally stable model with mutated data (the incremental
// window search in internal/schedule relies on this).
type Model struct {
	sense Sense
	vars  []variable
	rows  []lp.Row
}

// NewModel returns an empty model with the given optimization direction.
func NewModel(sense Sense) *Model {
	return &Model{sense: sense}
}

// AddVar adds a variable with bounds [0, upper] (upper may be +Inf for
// continuous/integer; Binary forces [0,1]) and the given objective
// coefficient. The name is used in diagnostics only.
func (m *Model) AddVar(name string, typ VarType, upper, objCoef float64) (VarID, error) {
	switch typ {
	case Binary:
		upper = 1
	case Continuous, Integer:
		if upper < 0 {
			return 0, fmt.Errorf("milp: negative upper bound %g for %q", upper, name)
		}
	default:
		return 0, fmt.Errorf("milp: bad variable type %d for %q", int(typ), name)
	}
	id := VarID(len(m.vars))
	m.vars = append(m.vars, variable{name: name, typ: typ, upper: upper, objCoef: objCoef})
	return id, nil
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraint rows.
func (m *Model) NumConstraints() int { return len(m.rows) }

// SetUpper replaces the upper bound of a Continuous or Integer variable;
// the next Solve picks it up.
func (m *Model) SetUpper(v VarID, upper float64) error {
	if v < 0 || int(v) >= len(m.vars) {
		return fmt.Errorf("milp: bound variable %d out of range", v)
	}
	if m.vars[v].typ == Binary {
		return fmt.Errorf("milp: cannot rebound binary variable %q", m.vars[v].name)
	}
	if upper < 0 {
		return fmt.Errorf("milp: negative upper bound %g for %q", upper, m.vars[v].name)
	}
	m.vars[v].upper = upper
	return nil
}

// AddConstraint adds the row coef . x rel rhs, converting the map to the
// sparse row form. Prefer AddConstraintIdx when building models in bulk.
func (m *Model) AddConstraint(coef map[VarID]float64, rel Rel, rhs float64) error {
	ids := make([]VarID, 0, len(coef))
	for v, c := range coef {
		if c != 0 {
			ids = append(ids, v)
		}
	}
	slices.Sort(ids)
	vals := make([]float64, len(ids))
	for k, v := range ids {
		vals[k] = coef[v]
	}
	_, err := m.AddConstraintIdx(ids, vals, rel, rhs)
	return err
}

// AddConstraintIdx adds the sparse row sum_k coefs[k]*x[ids[k]] rel rhs and
// returns its row index, usable with SetCoef/SetRHS. Both slices are copied;
// ids need not be sorted but must not repeat a variable.
func (m *Model) AddConstraintIdx(ids []VarID, coefs []float64, rel Rel, rhs float64) (int, error) {
	if len(ids) != len(coefs) {
		return 0, fmt.Errorf("milp: index/value length mismatch %d != %d", len(ids), len(coefs))
	}
	if rel != LE && rel != GE && rel != EQ {
		return 0, fmt.Errorf("milp: bad relation %d", int(rel))
	}
	idx := make([]int32, len(ids))
	val := make([]float64, len(ids))
	for k, v := range ids {
		if v < 0 || int(v) >= len(m.vars) {
			return 0, fmt.Errorf("milp: constraint variable %d out of range", v)
		}
		idx[k] = int32(v)
		val[k] = coefs[k]
	}
	// Insertion sort by index: rows are tiny and mostly sorted already.
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0 && idx[k] < idx[k-1]; k-- {
			idx[k], idx[k-1] = idx[k-1], idx[k]
			val[k], val[k-1] = val[k-1], val[k]
		}
	}
	for k := 1; k < len(idx); k++ {
		if idx[k] == idx[k-1] {
			return 0, fmt.Errorf("milp: duplicate constraint variable %d", idx[k])
		}
	}
	m.rows = append(m.rows, lp.Row{Idx: idx, Val: val, Rel: rel, RHS: rhs})
	return len(m.rows) - 1, nil
}

// SetRHS replaces the right-hand side of row i.
func (m *Model) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("milp: row %d out of range", i)
	}
	m.rows[i].RHS = rhs
	return nil
}

// SetCoef replaces the coefficient of variable v in row i; v must already
// appear in the row (the sparsity pattern is fixed at AddConstraintIdx time).
func (m *Model) SetCoef(i int, v VarID, coef float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("milp: row %d out of range", i)
	}
	r := &m.rows[i]
	for k, j := range r.Idx {
		if j == int32(v) {
			r.Val[k] = coef
			return nil
		}
	}
	return fmt.Errorf("milp: variable %d not in row %d", v, i)
}

// Options bounds the branch-and-bound search.
type Options struct {
	// MaxNodes limits explored nodes (0 = 1e6 default).
	MaxNodes int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// FirstFeasible stops at the first integral solution (feasibility
	// problems).
	FirstFeasible bool
	// IntTol is the integrality tolerance (0 = 1e-6 default).
	IntTol float64
	// Workers is the number of goroutines exploring the branch-and-bound
	// tree (0 = GOMAXPROCS). The result is deterministic regardless of the
	// worker count: ties between equally good solutions are broken by the
	// branch path, so any exploration schedule converges to the same
	// incumbent as the sequential search.
	Workers int
	// ColdStart solves every node's relaxation from scratch instead of
	// warm-starting from the root basis snapshot. The search proves the
	// same optimum either way (the differential tests pin this); cold
	// starts exist as the reference mode for those tests and benchmarks.
	ColdStart bool
	// Interrupt aborts the search when the channel closes (or yields a
	// value): workers stop picking up nodes and Solve returns ErrLimit.
	// It is the cancellation hook for long-lived callers — the admission
	// engine wires a context's Done channel here so a daemon shuts down
	// cleanly mid-solve. Which nodes were explored before the interrupt is
	// timing-dependent, so an interrupted solve is not deterministic; nil
	// (the default) keeps the search fully deterministic.
	Interrupt <-chan struct{}
}

// Solution is the result of a Solve call.
type Solution struct {
	X         []float64
	Objective float64
	// Optimal reports that the search proved optimality (or, with
	// FirstFeasible, found an integral solution).
	Optimal bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Pivots is the total simplex pivot count across the node relaxations
	// (lp.Solution.Iterations summed over the search). It is the honest
	// cost measure of a warm-started re-solve — a good warm start re-proves
	// feasibility in a handful of dual pivots where a cold solve pays a full
	// two-phase run. With Workers > 1 the explored node set (and hence the
	// pivot count) can vary run to run even though the returned solution
	// never does.
	Pivots int
}

// branch is one bound tightened on the path to a node: variable v rel value.
type branch struct {
	v   VarID
	rel Rel
	val float64
}

// node is one open subproblem of the branch-and-bound tree.
type node struct {
	branches []branch
	// key encodes the branch path from the root, one byte per level: 0 for
	// the child the sequential search explores first, 1 for the other.
	// Sequential DFS visits nodes in ascending key order (bytes.Compare,
	// prefixes first), so breaking incumbent ties by smallest key makes any
	// exploration schedule — including a parallel one — converge to the
	// exact incumbent the sequential search would return.
	key []byte
	// parent is the parent node's post-solve basis snapshot (nil at the
	// root and in cold-start mode). The snapshot already carries every
	// ancestor bound, so the node warm-starts from it with only its own
	// branch applied.
	parent *stateRef
}

// stateRef shares one parent snapshot between the two children it seeds;
// the last reader returns the snapshot's buffers to the pool.
type stateRef struct {
	st   *lp.State
	refs atomic.Int32
}

var statePool sync.Pool // of *lp.State

func newStateRef(solver *lp.Solver) *stateRef {
	st, _ := statePool.Get().(*lp.State)
	r := &stateRef{st: solver.Snapshot(st)}
	r.refs.Store(2)
	return r
}

// release drops one reference. The snapshot must not be read afterwards.
func (r *stateRef) release() {
	if r != nil && r.refs.Add(-1) == 0 {
		statePool.Put(r.st)
	}
}

// search is the shared state of one Solve call: the worker pool's work
// stack, the incumbent, and the limit bookkeeping.
type search struct {
	m             *Model
	compiled      *lp.Compiled
	sign          float64 // minimization-form multiplier
	firstFeasible bool
	coldStart     bool
	intTol        float64
	maxNodes      int
	deadline      time.Time
	interrupt     <-chan struct{}

	pivots atomic.Uint64 // simplex pivots across node relaxations

	mu       sync.Mutex
	cond     *sync.Cond
	stack    []node // LIFO: DFS order when sequential
	active   int    // workers currently expanding a node
	stopped  bool   // a limit was hit or a worker failed
	limitHit bool
	err      error
	nodes    int // LP relaxations solved

	incumbent    []float64
	incumbentObj float64 // minimization form
	incumbentKey []byte
	haveInc      bool

	// Observability handles, captured from the process default in Solve; nil
	// (no-op) when none is installed. Updates are atomic, so the worker pool
	// reports without extra locking.
	obsWarm *obs.Counter
	obsCold *obs.Counter
}

// Solve runs branch-and-bound and returns the best integral solution. It
// returns ErrInfeasible if no integral solution exists, or ErrLimit if
// limits were exhausted before one was found.
//
// With Options.Workers > 1 the tree is explored by a worker pool sharing the
// incumbent; the result is identical to the sequential search (see node.key).
func (m *Model) Solve(opts Options) (*Solution, error) {
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1_000_000
	}
	intTol := opts.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	compiled, err := m.compileRelaxation()
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, ErrInfeasible
		}
		return nil, err
	}
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	s := &search{
		m:             m,
		compiled:      compiled,
		sign:          sign,
		firstFeasible: opts.FirstFeasible,
		coldStart:     opts.ColdStart,
		intTol:        intTol,
		maxNodes:      maxNodes,
		deadline:      deadline,
		interrupt:     opts.Interrupt,
		stack:         []node{{}},
		incumbentObj:  math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	reg := obs.Default()
	s.obsWarm = reg.Counter("milp.warm_solves")
	s.obsCold = reg.Counter("milp.cold_solves")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.run()
		}()
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	if s.incumbent == nil {
		if s.limitHit {
			return nil, fmt.Errorf("%w (nodes=%d)", ErrLimit, s.nodes)
		}
		return nil, ErrInfeasible
	}
	obj := 0.0
	for j, v := range m.vars {
		obj += v.objCoef * s.incumbent[j]
	}
	reg.Counter("milp.solves").Inc()
	reg.Counter("milp.nodes").Add(uint64(s.nodes))
	return &Solution{X: s.incumbent, Objective: obj, Optimal: !s.limitHit,
		Nodes: s.nodes, Pivots: int(s.pivots.Load())}, nil
}

// interrupted reports whether Options.Interrupt has fired. Callers hold s.mu;
// the select itself is non-blocking.
func (s *search) interrupted() bool {
	if s.interrupt == nil {
		return false
	}
	select {
	case <-s.interrupt:
		return true
	default:
		return false
	}
}

// compileRelaxation freezes the LP relaxation of the model without any
// branch bounds. The bound and objective slices are built fresh (picking up
// SetUpper-style mutations) and the rows are lent to lp without copying.
func (m *Model) compileRelaxation() (*lp.Compiled, error) {
	n := len(m.vars)
	obj := make([]float64, n)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for j, v := range m.vars {
		obj[j] = v.objCoef
		upper[j] = v.upper
	}
	return lp.Compile(lp.NewProblemShared(m.sense, obj, lower, upper, m.rows))
}

// run is one pool worker: pop a node, expand it, push its children, until
// the tree is exhausted or a limit fires. Each worker owns one lp.Solver
// workspace for the whole search.
func (s *search) run() {
	solver := lp.NewSolver()
	var changes []lp.BoundChange
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.stack) == 0 && s.active > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || len(s.stack) == 0 {
			s.cond.Broadcast()
			return
		}
		cur := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]

		// A feasibility search only cares about solutions on branch paths
		// before the incumbent's; drop later ones without an LP solve (this
		// is also what keeps the sequential node count identical to the
		// old early-exit behaviour: every node after the incumbent prunes
		// here).
		if s.firstFeasible && s.haveInc && bytes.Compare(cur.key, s.incumbentKey) >= 0 {
			cur.parent.release()
			continue
		}
		if s.nodes >= s.maxNodes || (!s.deadline.IsZero() && time.Now().After(s.deadline)) || s.interrupted() {
			s.limitHit = true
			s.stopped = true
			s.cond.Broadcast()
			return
		}
		s.nodes++
		s.active++
		s.mu.Unlock()

		changes = changes[:0]
		for _, b := range cur.branches {
			changes = append(changes, lp.BoundChange{Col: int32(b.v), Upper: b.rel == LE, Val: b.val})
		}
		children, err := s.expand(cur, solver, changes)
		cur.parent.release()

		s.mu.Lock()
		s.active--
		if err != nil && s.err == nil {
			s.err = err
			s.stopped = true
		}
		s.stack = append(s.stack, children...)
		s.cond.Broadcast()
	}
}

// expand solves a node's relaxation and returns its children (nil when the
// node is pruned, infeasible, or integral). Children are ordered so the
// sequentially-preferred child is popped first from the LIFO stack.
func (s *search) expand(cur node, solver *lp.Solver, changes []lp.BoundChange) ([]node, error) {
	var warm *lp.State
	if cur.parent != nil {
		// The snapshot's bounds already reflect every ancestor branch;
		// only the node's own branch is new.
		warm = cur.parent.st
		changes = changes[len(changes)-1:]
		s.obsWarm.Inc()
	} else {
		s.obsCold.Inc()
	}
	before := solver.Pivots()
	sol, err := solver.Solve(s.compiled, warm, changes)
	s.pivots.Add(solver.Pivots() - before)
	if errors.Is(err, lp.ErrInfeasible) {
		return nil, nil
	}
	if errors.Is(err, lp.ErrUnbounded) {
		// An unbounded relaxation of an integer problem: treat as an error
		// since our scheduling models are bounded.
		return nil, fmt.Errorf("milp: relaxation unbounded: %w", err)
	}
	if err != nil {
		return nil, fmt.Errorf("milp: relaxation: %w", err)
	}
	bound := s.sign * sol.Objective

	s.mu.Lock()
	prune := s.prunedLocked(bound, cur.key)
	s.mu.Unlock()
	if prune {
		return nil, nil
	}

	fracVar, fracVal := s.m.mostFractional(sol.X, s.intTol)
	if fracVar == -1 {
		// Integral: candidate incumbent.
		x := roundIntegral(s.m, sol.X, s.intTol)
		s.mu.Lock()
		if s.acceptsLocked(bound, cur.key) {
			s.incumbent, s.incumbentObj = x, bound
			s.incumbentKey, s.haveInc = cur.key, true
		}
		s.mu.Unlock()
		return nil, nil
	}
	// Branch. floor child: x <= floor(v); ceil child: x >= ceil(v). The
	// child nearer the fractional value is preferred (key byte 0) and goes
	// last so the LIFO pops it first. Both children share this node's
	// post-solve snapshot as their warm-start seed.
	var parent *stateRef
	if !s.coldStart {
		parent = newStateRef(solver)
	}
	floorB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: LE, val: math.Floor(fracVal)})
	ceilB := append(append([]branch(nil), cur.branches...), branch{v: fracVar, rel: GE, val: math.Ceil(fracVal)})
	preferred := append(append([]byte(nil), cur.key...), 0)
	other := append(append([]byte(nil), cur.key...), 1)
	if fracVal-math.Floor(fracVal) < 0.5 {
		return []node{{branches: ceilB, key: other, parent: parent}, {branches: floorB, key: preferred, parent: parent}}, nil
	}
	return []node{{branches: floorB, key: other, parent: parent}, {branches: ceilB, key: preferred, parent: parent}}, nil
}

// prunedLocked reports whether a solved node's subtree can no longer beat
// the incumbent. Callers hold s.mu.
func (s *search) prunedLocked(bound float64, key []byte) bool {
	if !s.haveInc {
		return false
	}
	if s.firstFeasible {
		// No bound pruning: any integral solution on an earlier branch path
		// wins regardless of objective.
		return bytes.Compare(key, s.incumbentKey) >= 0
	}
	if bound < s.incumbentObj-1e-9 {
		return false
	}
	// Objective tied (or worse): the subtree can only supply an incumbent
	// via the key tie-break, possible only on an earlier branch path.
	return !(bound <= s.incumbentObj+1e-9 && bytes.Compare(key, s.incumbentKey) < 0)
}

// acceptsLocked reports whether an integral solution (bound, key) replaces
// the incumbent: better objective first, then earlier branch path. Callers
// hold s.mu.
func (s *search) acceptsLocked(bound float64, key []byte) bool {
	if !s.haveInc {
		return true
	}
	if s.firstFeasible {
		return bytes.Compare(key, s.incumbentKey) < 0
	}
	if bound < s.incumbentObj-1e-9 {
		return true
	}
	return bound <= s.incumbentObj+1e-9 && bytes.Compare(key, s.incumbentKey) < 0
}

// mostFractional returns the integer variable with value farthest from an
// integer, or -1 if all integer variables are integral within tol.
func (m *Model) mostFractional(x []float64, tol float64) (VarID, float64) {
	best, bestDist := VarID(-1), tol
	for j, v := range m.vars {
		if v.typ == Continuous {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist = VarID(j), dist
		}
	}
	if best == -1 {
		return -1, 0
	}
	return best, x[best]
}

func roundIntegral(m *Model, x []float64, tol float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, v := range m.vars {
		if v.typ != Continuous {
			out[j] = math.Round(out[j])
		}
	}
	_ = tol
	return out
}

// VarName returns the name of a variable (diagnostics).
func (m *Model) VarName(v VarID) string {
	if v < 0 || int(v) >= len(m.vars) {
		return fmt.Sprintf("var(%d)", int(v))
	}
	return m.vars[v].name
}

// Describe returns a human-readable summary of the model size.
func (m *Model) Describe() string {
	nBin, nInt := 0, 0
	for _, v := range m.vars {
		switch v.typ {
		case Binary:
			nBin++
		case Integer:
			nInt++
		}
	}
	return fmt.Sprintf("milp: %d vars (%d binary, %d integer), %d constraints",
		len(m.vars), nBin, nInt, len(m.rows))
}

// SortedVarIDs returns all variable IDs ascending (test helper convenience).
func (m *Model) SortedVarIDs() []VarID {
	out := make([]VarID, len(m.vars))
	for i := range out {
		out[i] = VarID(i)
	}
	slices.Sort(out)
	return out
}
