package milp

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// randomModel builds a random bounded integer program: binary and small
// integer variables, mixed-relation constraints. Deterministic for a seed.
func randomModel(t *testing.T, rng *rand.Rand) *Model {
	t.Helper()
	sense := Minimize
	if rng.Intn(2) == 1 {
		sense = Maximize
	}
	m := NewModel(sense)
	nVars := 3 + rng.Intn(5)
	vars := make([]VarID, nVars)
	for j := 0; j < nVars; j++ {
		typ := Binary
		upper := 1.0
		if rng.Intn(3) == 0 {
			typ = Integer
			upper = float64(2 + rng.Intn(4))
		}
		v, err := m.AddVar(fmt.Sprintf("x%d", j), typ, upper, float64(rng.Intn(11)-5))
		if err != nil {
			t.Fatalf("add var: %v", err)
		}
		vars[j] = v
	}
	nCons := 2 + rng.Intn(5)
	for i := 0; i < nCons; i++ {
		coef := make(map[VarID]float64)
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				coef[v] = float64(rng.Intn(7) - 3)
			}
		}
		rel := []Rel{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(9) - 2)
		if err := m.AddConstraint(coef, rel, rhs); err != nil {
			t.Fatalf("add constraint: %v", err)
		}
	}
	return m
}

// TestParallelMatchesSequential solves a batch of random integer programs
// with one worker and with several, and demands identical outcomes: same
// error class, and bit-identical solution vectors and objectives (ties are
// broken by branch path, so the parallel search must land on the exact
// incumbent of the sequential search).
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	feasible, infeasible := 0, 0
	for trial := 0; trial < 60; trial++ {
		m := randomModel(t, rng)
		for _, firstFeasible := range []bool{false, true} {
			seq, seqErr := m.Solve(Options{Workers: 1, FirstFeasible: firstFeasible})
			par, parErr := m.Solve(Options{Workers: 4, FirstFeasible: firstFeasible})
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d ff=%v: seq err %v, par err %v", trial, firstFeasible, seqErr, parErr)
			}
			if seqErr != nil {
				if !errors.Is(parErr, ErrInfeasible) || !errors.Is(seqErr, ErrInfeasible) {
					t.Fatalf("trial %d ff=%v: error mismatch: seq %v, par %v", trial, firstFeasible, seqErr, parErr)
				}
				infeasible++
				continue
			}
			feasible++
			if seq.Objective != par.Objective {
				t.Fatalf("trial %d ff=%v: objective seq %g != par %g", trial, firstFeasible, seq.Objective, par.Objective)
			}
			if seq.Optimal != par.Optimal {
				t.Fatalf("trial %d ff=%v: optimal seq %v != par %v", trial, firstFeasible, seq.Optimal, par.Optimal)
			}
			if len(seq.X) != len(par.X) {
				t.Fatalf("trial %d ff=%v: len(X) %d != %d", trial, firstFeasible, len(seq.X), len(par.X))
			}
			for j := range seq.X {
				if seq.X[j] != par.X[j] {
					t.Fatalf("trial %d ff=%v: X[%d] seq %g != par %g\nseq %v\npar %v",
						trial, firstFeasible, j, seq.X[j], par.X[j], seq.X, par.X)
				}
			}
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("weak coverage: %d feasible, %d infeasible outcomes", feasible, infeasible)
	}
}

// TestSolveRepeatable checks a single model solved repeatedly with many
// workers always returns the same solution (no schedule-dependent drift).
func TestSolveRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var m *Model
	var ref *Solution
	for {
		m = randomModel(t, rng)
		sol, err := m.Solve(Options{Workers: 1})
		if err == nil && sol.Nodes > 3 {
			ref = sol
			break
		}
	}
	for i := 0; i < 20; i++ {
		sol, err := m.Solve(Options{Workers: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for j := range ref.X {
			if sol.X[j] != ref.X[j] {
				t.Fatalf("run %d: X[%d] = %g, want %g", i, j, sol.X[j], ref.X[j])
			}
		}
		if sol.Objective != ref.Objective {
			t.Fatalf("run %d: objective %g, want %g", i, sol.Objective, ref.Objective)
		}
	}
}

// TestWorkersDefault checks Workers=0 resolves to a working default.
func TestWorkersDefault(t *testing.T) {
	m := NewModel(Maximize)
	a, _ := m.AddVar("a", Binary, 1, 3)
	b, _ := m.AddVar("b", Binary, 1, 2)
	if err := m.AddConstraint(map[VarID]float64{a: 1, b: 1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %g, want 3", sol.Objective)
	}
}
