package analytic

import (
	"errors"
	"fmt"
	"math"
	"time"

	"wimesh/internal/conflict"
	"wimesh/internal/phy"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// DefaultDCFUtilizationLimit is the serialized-airtime threshold above which
// the DCF screen predicts queue saturation. Data exchanges within one
// carrier-sense neighbourhood serialize (DIFS and backoff gaps overlap across
// contenders, so only the exchange plus a short post-busy gap occupies the
// channel); once the retry-inflated sum of those exchange times approaches
// the threshold, interface queues grow without bound and the simulation shows
// exactly the queue-drop failures the screen must anticipate. The value is a
// screening calibration, not a guarantee — the capacity search always
// confirms the bracket edge with full-length simulation.
const DefaultDCFUtilizationLimit = 0.9

const (
	// dcfPCollCap bounds the per-attempt collision probability: past it the
	// fixed point has long since lost the flow, and capping keeps the retry
	// series finite. Calibrated against simulated collision rates near the
	// capacity edge (the sim tops out around 0.4-0.5 per attempt on the
	// hidden-terminal-heavy random topologies; the cap leaves headroom for
	// the fixed point without letting it run away).
	dcfPCollCap = 0.8
	// dcfVulnFactor scales the hidden-terminal vulnerability window in
	// units of the hidden transmitter's exchange time. The geometric value
	// is 2 (any overlap of two exchanges); partial overlaps still often
	// capture the frame, so the effective window calibrates slightly lower.
	dcfVulnFactor = 1.75
	// dcfIters is the number of fixed-point sweeps coupling collision
	// probability and retry-inflated attempt rates.
	dcfIters = 6
	// dcfIdleFloor bounds the idle fraction used to inflate backoff
	// countdown (which freezes while the medium is busy).
	dcfIdleFloor = 0.05
	// dcfPostBusyGapSlots approximates the dead air after each busy period:
	// the winning contender's residual backoff, a few slots on average.
	dcfPostBusyGapSlots = 5
)

// DCFConfig parameterizes the DCF contention screen.
type DCFConfig struct {
	// PHY supplies the timing constants (exchange, DIFS, backoff slots).
	PHY phy.WiFiPHY
	// DataRateBps is the default data rate; links with a supported
	// per-link rate use their own (matching the DCF MAC's adaptation).
	DataRateBps float64
	// Codec supplies packet size, rate and E-model parameters.
	Codec voip.Codec
	// InterferenceRange is the carrier-sense/interference radius in meters
	// (the same radius the simulated medium uses for audibility). Hidden
	// terminals — transmitters audible at a hop's receiver but not at its
	// sender — are derived from it.
	InterferenceRange float64
	// RetryLimit is the maximum retransmissions before the MAC drops a
	// packet (default 7, matching the DCF MAC).
	RetryLimit int
	// QueueCap is the finite per-node interface queue depth in packets
	// (default 64, matching the DCF MAC).
	QueueCap int
	// UtilizationLimit overrides DefaultDCFUtilizationLimit when > 0.
	UtilizationLimit float64
	// LateTarget is the playout late-loss target used to size the
	// predicted jitter buffer from the delay spread.
	LateTarget float64
}

// PredictDCF screens a flow set over plain 802.11 DCF with a two-mechanism
// contention model matching how the simulated MAC actually fails:
//
//   - Queue saturation: data exchanges within a carrier-sense neighbourhood
//     serialize, so node s sees channel occupancy
//     U_s = sum over o with o == s or audible(o, s) of
//     rate_o * attempts_o * exchange_o  (+ per-transmission dead air).
//     Past the utilization limit the interface queues grow without bound and
//     the screen predicts queue-overflow loss against the finite queue.
//
//   - Hidden-terminal loss: a transmitter audible at hop (s -> r)'s receiver
//     but not at s collides with the hop whenever their exchanges overlap
//     (vulnerability window 2 * exchange). Collisions trigger retries —
//     which inflate every neighbour's attempt rate, closed as a fixed
//     point — and retry-limit exhaustion surfaces as per-hop loss
//     p^(RetryLimit+1) even while utilization looks moderate.
//
// Per-flow delay sums retry-inflated access times and M/D/1 queue waits; the
// E-model verdict over predicted mouth-to-ear delay and loss decides
// acceptability, mirroring the simulated scorer.
func (pd *Predictor) PredictDCF(g *conflict.Graph, flows []topology.Flow, cfg DCFConfig) (Prediction, error) {
	if g == nil {
		return Prediction{}, errors.New("analytic: nil conflict graph")
	}
	if len(flows) == 0 {
		return Prediction{}, errors.New("analytic: no flows")
	}
	if cfg.Codec.PacketInterval <= 0 {
		return Prediction{}, fmt.Errorf("analytic: codec %q has no packet interval", cfg.Codec.Name)
	}
	limit := cfg.UtilizationLimit
	if limit <= 0 {
		limit = DefaultDCFUtilizationLimit
	}
	retryLimit := cfg.RetryLimit
	if retryLimit <= 0 {
		retryLimit = 7
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 64
	}
	net := g.Network()
	if err := pd.ensureAudibility(net, cfg.InterferenceRange); err != nil {
		return Prediction{}, err
	}
	nl := net.NumLinks()
	nn := net.NumNodes()
	pd.sizeDCF(nl, nn)

	// Per-link exchange time (DATA + SIFS + ACK at the link's rate) and
	// per-node offered packet rate.
	pktBytes := cfg.Codec.PacketBytes()
	pktRate := 1 / cfg.Codec.PacketInterval.Seconds()
	for i := 0; i < nl; i++ {
		lk, err := net.Link(topology.LinkID(i))
		if err != nil {
			return Prediction{}, err
		}
		rate := cfg.DataRateBps
		if lk.RateBps > 0 && cfg.PHY.SupportsRate(lk.RateBps) {
			rate = lk.RateBps
		}
		ex, err := cfg.PHY.DataExchangeTime(pktBytes, rate)
		if err != nil {
			return Prediction{}, err
		}
		pd.linkEx[lk.ID] = ex.Seconds()
	}
	for i := range flows {
		for _, l := range flows[i].Path {
			lk, err := net.Link(l)
			if err != nil {
				return Prediction{}, err
			}
			pd.nodeRate[lk.From] += pktRate
			pd.nodeAir[lk.From] += pktRate * pd.linkEx[l]
		}
	}

	slot := cfg.PHY.SlotTime.Seconds()
	difs := cfg.PHY.DIFS().Seconds()
	gap := difs + dcfPostBusyGapSlots*slot

	// Fixed point: per-hop collision probability -> attempts per packet ->
	// retry-inflated neighbour rates -> collision probability.
	for i := range pd.nodeAtt {
		pd.nodeAtt[i] = 1
	}
	for iter := 0; iter < dcfIters; iter++ {
		// Retry-inflated per-node exchange airtime and attempt rate.
		for n := 0; n < nn; n++ {
			pd.inflAir[n] = pd.nodeAir[n] * pd.nodeAtt[n]
			pd.inflRate[n] = pd.nodeRate[n] * pd.nodeAtt[n]
			pd.attAcc[n] = 0
		}
		for i := range flows {
			for _, l := range flows[i].Path {
				lk, _ := net.Link(l)
				p := pd.hopCollision(lk, slot)
				pd.attAcc[lk.From] += pktRate * attemptsPerPacket(p, retryLimit)
			}
		}
		for n := 0; n < nn; n++ {
			if pd.nodeRate[n] > 0 {
				pd.nodeAtt[n] = pd.attAcc[n] / pd.nodeRate[n]
			}
		}
	}

	// Converged neighbourhood occupancy (serialized exchange airtime plus
	// post-busy dead air per transmission) and per-node service model.
	maxU := 0.0
	for n := 0; n < nn; n++ {
		u := pd.inflAir[n] + pd.inflRate[n]*gap
		row := pd.audBits[n*pd.audWords:]
		for o := 0; o < nn; o++ {
			if o != n && row[o>>6]&(1<<(uint(o)&63)) != 0 {
				u += pd.inflAir[o] + pd.inflRate[o]*gap
			}
		}
		pd.nodeU[n] = u
		// Backoff countdown freezes only while *others* occupy the medium:
		// a node's own transmissions are its service, not its wait.
		pd.nodeUOther[n] = u - pd.inflAir[n] - pd.inflRate[n]*gap
		if pd.nodeRate[n] > 0 && u > maxU {
			maxU = u
		}
	}
	// Mean per-packet service time per node (attempts-weighted over its
	// hops), then M/D/1 queue wait against the finite interface queue.
	for n := 0; n < nn; n++ {
		pd.attAcc[n] = 0
	}
	for i := range flows {
		for _, l := range flows[i].Path {
			lk, _ := net.Link(l)
			p := pd.hopCollision(lk, slot)
			pd.attAcc[lk.From] += pktRate * pd.hopService(lk, p, difs, slot, retryLimit)
		}
	}
	for n := 0; n < nn; n++ {
		if pd.nodeRate[n] == 0 {
			pd.nodeServ[n] = 0
			pd.nodeWq[n] = 0
			pd.nodeQLoss[n] = 0
			continue
		}
		serv := pd.attAcc[n] / pd.nodeRate[n]
		pd.nodeServ[n] = serv
		rho := pd.nodeRate[n] * serv
		// Past the utilization limit the neighbourhood cannot carry the
		// offered exchange airtime: the interface queue grows without
		// bound, so the effective server load is at least the occupancy
		// overshoot u/limit (> 1), surfacing overflow loss and a
		// full-queue wait exactly like the simulated queue drops.
		if over := pd.nodeU[n] / limit; over > 1 && over > rho {
			rho = over
		}
		full := float64(queueCap) * serv
		if rho >= 1 {
			pd.nodeQLoss[n] = 1 - 1/rho
			pd.nodeWq[n] = full
		} else {
			wq := rho * serv / (2 * (1 - rho))
			if wq > full {
				wq = full
			}
			pd.nodeWq[n] = wq
			pd.nodeQLoss[n] = 0
		}
	}

	if cap(pd.flows) < len(flows) {
		pd.flows = make([]FlowPrediction, len(flows))
	}
	pd.flows = pd.flows[:len(flows)]
	res := Prediction{MinR: 100, AllAcceptable: true, MaxUtilization: maxU}
	for i := range flows {
		f := &flows[i]
		fp := FlowPrediction{FlowID: f.ID}
		deliver := 1.0
		var mean, spread float64
		for _, l := range f.Path {
			lk, _ := net.Link(l)
			p := pd.hopCollision(lk, slot)
			deliver *= 1 - math.Pow(p, float64(retryLimit+1))
			deliver *= 1 - pd.nodeQLoss[lk.From]
			serv := pd.hopService(lk, p, difs, slot, retryLimit)
			wq := pd.nodeWq[lk.From]
			mean += serv + wq
			// Queue waits and retry bursts dominate the delay spread;
			// exponential-tail assumption for the high quantiles.
			spread += wq + serv - pd.linkEx[l]
		}
		fp.Loss = 1 - deliver
		fp.MeanDelay = time.Duration(mean * float64(time.Second))
		fp.P95Delay = time.Duration((mean + 2*spread) * float64(time.Second))
		fp.MaxDelay = time.Duration((mean + 4*spread) * float64(time.Second))
		fp.JitterBuffer = fp.P95Delay
		fp.MouthToEar = voip.EndToEndDelay(cfg.Codec, fp.JitterBuffer, 0)
		q, err := voip.Evaluate(cfg.Codec, fp.MouthToEar, fp.Loss)
		if err != nil {
			return Prediction{}, err
		}
		fp.Quality = q
		pd.flows[i] = fp
		if q.R < res.MinR {
			res.MinR = q.R
		}
		if !q.Acceptable() {
			res.AllAcceptable = false
		}
	}
	res.Flows = pd.flows
	return res, nil
}

// hopCollision is the per-attempt collision probability of hop lk: hidden
// terminals overlap the exchange within a 2*exchange vulnerability window,
// and carrier-sensing contenders collide when backoffs expire in the same
// slot. Rates are the retry-inflated fixed-point values.
func (pd *Predictor) hopCollision(lk topology.Link, slot float64) float64 {
	sRow := pd.audBits[int(lk.From)*pd.audWords:]
	rRow := pd.audBits[int(lk.To)*pd.audWords:]
	nn := len(pd.nodeRate)
	p := 0.0
	for o := 0; o < nn; o++ {
		if o == int(lk.From) || pd.inflRate[o] == 0 {
			continue
		}
		w := 1 << (uint(o) & 63)
		audSender := sRow[o>>6]&uint64(w) != 0
		if o != int(lk.To) && rRow[o>>6]&uint64(w) != 0 && !audSender {
			p += dcfVulnFactor * pd.inflAir[o] // rate * exchange overlap, retry-inflated
		} else if audSender {
			p += pd.inflRate[o] * slot
		}
	}
	if p > dcfPCollCap {
		p = dcfPCollCap
	}
	return p
}

// hopService is the mean per-packet channel access time of hop lk at
// collision probability p: every attempt spends DIFS plus the exchange, and
// the escalating backoff counts down only while the neighbourhood is idle.
func (pd *Predictor) hopService(lk topology.Link, p, difs, slot float64, retryLimit int) float64 {
	att := attemptsPerPacket(p, retryLimit)
	idle := 1 - pd.nodeUOther[lk.From]
	if idle < dcfIdleFloor {
		idle = dcfIdleFloor
	}
	return att*(difs+pd.linkEx[lk.ID]) + expectedBackoff(p, retryLimit, slot)/idle
}

// attemptsPerPacket is the expected transmission count per packet at
// per-attempt collision probability p with the given retry limit:
// sum of p^i for i in [0, retryLimit].
func attemptsPerPacket(p float64, retryLimit int) float64 {
	att, pw := 0.0, 1.0
	for i := 0; i <= retryLimit; i++ {
		att += pw
		pw *= p
	}
	return att
}

// expectedBackoff is the expected total backoff time per packet: attempt i
// (reached with probability p^i) draws uniformly from a window doubling from
// CWMin up to CWMax.
func expectedBackoff(p float64, retryLimit int, slot float64) float64 {
	const cwMin, cwMax = 31, 1023
	b, pw := 0.0, 1.0
	cw := float64(cwMin)
	for i := 0; i <= retryLimit; i++ {
		b += pw * cw / 2 * slot
		pw *= p
		cw = cw*2 + 1
		if cw > cwMax {
			cw = cwMax
		}
	}
	return b
}

// ensureAudibility (re)builds the node-level audibility bitset — linked
// neighbours plus any node within the interference range, exactly the
// simulated medium's rule — caching it per (network, range).
func (pd *Predictor) ensureAudibility(net *topology.Network, rangeM float64) error {
	if rangeM <= 0 {
		return fmt.Errorf("analytic: non-positive interference range %g", rangeM)
	}
	if pd.audNet == net && pd.audRange == rangeM {
		return nil
	}
	nn := net.NumNodes()
	words := (nn + 63) / 64
	if cap(pd.audBits) < nn*words {
		pd.audBits = make([]uint64, nn*words)
	}
	pd.audBits = pd.audBits[:nn*words]
	for i := range pd.audBits {
		pd.audBits[i] = 0
	}
	for a := 0; a < nn; a++ {
		for b := 0; b < nn; b++ {
			if a == b {
				continue
			}
			d, err := net.Distance(topology.NodeID(a), topology.NodeID(b))
			if err != nil {
				return err
			}
			if d <= rangeM {
				pd.audBits[a*words+b>>6] |= 1 << (uint(b) & 63)
			}
		}
	}
	for _, lk := range net.Links() {
		pd.audBits[int(lk.From)*words+int(lk.To)>>6] |= 1 << (uint(lk.To) & 63)
		pd.audBits[int(lk.To)*words+int(lk.From)>>6] |= 1 << (uint(lk.From) & 63)
	}
	pd.audWords = words
	pd.audNet = net
	pd.audRange = rangeM
	return nil
}

// sizeDCF (re)sizes the DCF scratch for nl links and nn nodes.
func (pd *Predictor) sizeDCF(nl, nn int) {
	if cap(pd.linkEx) < nl {
		pd.linkEx = make([]float64, nl)
	}
	pd.linkEx = pd.linkEx[:nl]
	if cap(pd.nodeRate) < nn {
		pd.nodeRate = make([]float64, nn)
		pd.nodeAir = make([]float64, nn)
		pd.nodeAtt = make([]float64, nn)
		pd.inflAir = make([]float64, nn)
		pd.inflRate = make([]float64, nn)
		pd.attAcc = make([]float64, nn)
		pd.nodeU = make([]float64, nn)
		pd.nodeUOther = make([]float64, nn)
		pd.nodeServ = make([]float64, nn)
		pd.nodeWq = make([]float64, nn)
		pd.nodeQLoss = make([]float64, nn)
	}
	pd.nodeRate = pd.nodeRate[:nn]
	pd.nodeAir = pd.nodeAir[:nn]
	pd.nodeAtt = pd.nodeAtt[:nn]
	pd.inflAir = pd.inflAir[:nn]
	pd.inflRate = pd.inflRate[:nn]
	pd.attAcc = pd.attAcc[:nn]
	pd.nodeU = pd.nodeU[:nn]
	pd.nodeUOther = pd.nodeUOther[:nn]
	pd.nodeServ = pd.nodeServ[:nn]
	pd.nodeWq = pd.nodeWq[:nn]
	pd.nodeQLoss = pd.nodeQLoss[:nn]
	for i := 0; i < nn; i++ {
		pd.nodeRate[i] = 0
		pd.nodeAir[i] = 0
	}
}
