package analytic

import (
	"testing"
	"time"

	"wimesh/internal/conflict"
	"wimesh/internal/phy"
	"wimesh/internal/tdma"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// chainFixture builds an n-node chain with k uplink calls to the gateway and
// a round-robin schedule giving every traversed link slotsPer slots.
type chainFixture struct {
	net   *topology.Network
	graph *conflict.Graph
	fs    *topology.FlowSet
	sched *tdma.Schedule
	cfg   TDMAConfig
}

func newChainFixture(t testing.TB, nodes, calls, slotsPer int, codec voip.Codec, queueCap int) *chainFixture {
	t.Helper()
	net, err := topology.Chain(nodes, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := conflict.Build(net, conflict.Options{Model: conflict.ModelGeometric, InterferenceRange: 250})
	if err != nil {
		t.Fatal(err)
	}
	gw, ok := net.Gateway()
	if !ok {
		t.Fatal("chain has no gateway")
	}
	fs := topology.NewFlowSet(net)
	var callers []topology.NodeID
	for _, nd := range net.Nodes() {
		if nd.ID != gw {
			callers = append(callers, nd.ID)
		}
	}
	for i := 0; i < calls; i++ {
		src := callers[i%len(callers)]
		if _, err := fs.Add(src, gw, codec.BandwidthBps(), 150*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	frame := tdma.DefaultEmulationFrame()
	sched, err := tdma.NewSchedule(frame)
	if err != nil {
		t.Fatal(err)
	}
	// One slot block per traversed link, furthest link first (so a packet
	// chains hop to hop within one frame where slots allow).
	seen := map[topology.LinkID]bool{}
	var order []topology.LinkID
	for _, f := range fs.Flows {
		for _, l := range f.Path {
			if !seen[l] {
				seen[l] = true
				order = append(order, l)
			}
		}
	}
	slot := 0
	for _, l := range order {
		if slot+slotsPer > frame.DataSlots {
			t.Fatalf("fixture needs %d slots, frame has %d", slot+slotsPer, frame.DataSlots)
		}
		if err := sched.Add(tdma.Assignment{Link: l, Start: slot, Length: slotsPer}); err != nil {
			t.Fatal(err)
		}
		slot += slotsPer
	}
	p := phy.IEEE80211b()
	air, err := p.DataFrameTime(codec.PacketBytes(), 11e6)
	if err != nil {
		t.Fatal(err)
	}
	airs := make([]time.Duration, net.NumLinks())
	for i := range airs {
		airs[i] = air
	}
	return &chainFixture{
		net:   net,
		graph: g,
		fs:    fs,
		sched: sched,
		cfg: TDMAConfig{
			Frame:       frame,
			Guard:       100 * time.Microsecond,
			SIFS:        p.SIFS,
			LinkAirtime: airs,
			QueueCap:    queueCap,
			Codec:       codec,
			LateTarget:  0.01,
		},
	}
}

func TestPredictTDMALightLoad(t *testing.T) {
	fx := newChainFixture(t, 4, 3, 2, voip.G711(), 64)
	pred, err := NewPredictor().PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.AllAcceptable {
		t.Fatalf("light load predicted unacceptable: MinR=%.1f", pred.MinR)
	}
	if len(pred.Flows) != 3 {
		t.Fatalf("got %d flow predictions, want 3", len(pred.Flows))
	}
	frame := fx.cfg.Frame.FrameDuration
	for _, fp := range pred.Flows {
		if fp.Loss != 0 {
			t.Errorf("flow %d: predicted loss %g under light load", fp.FlowID, fp.Loss)
		}
		if fp.MeanDelay <= 0 || fp.MaxDelay < fp.MeanDelay || fp.P95Delay > fp.MaxDelay {
			t.Errorf("flow %d: inconsistent delay stats mean=%v p95=%v max=%v",
				fp.FlowID, fp.MeanDelay, fp.P95Delay, fp.MaxDelay)
		}
		if fp.MaxDelay > 3*frame {
			t.Errorf("flow %d: max delay %v exceeds 3 frames under light load", fp.FlowID, fp.MaxDelay)
		}
		if fp.Quality.R < voip.TollQualityR {
			t.Errorf("flow %d: R=%.1f below toll quality", fp.FlowID, fp.Quality.R)
		}
	}
	if pred.MaxUtilization <= 0 || pred.MaxUtilization > 1 {
		t.Errorf("utilization %g outside (0,1] under stable load", pred.MaxUtilization)
	}
}

func TestPredictTDMAOverload(t *testing.T) {
	// 14 calls over a 4-node chain with a single slot per link: the
	// gateway link sees 14 packets per frame against a 2-3 packet service.
	fx := newChainFixture(t, 4, 14, 1, voip.G711(), 64)
	pred, err := NewPredictor().PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.AllAcceptable {
		t.Fatalf("overload predicted acceptable: MinR=%.1f util=%.2f", pred.MinR, pred.MaxUtilization)
	}
	if pred.MaxUtilization <= 1 {
		t.Errorf("overload utilization %g, want > 1", pred.MaxUtilization)
	}
	worst := 0.0
	for _, fp := range pred.Flows {
		if fp.Loss > worst {
			worst = fp.Loss
		}
	}
	if worst <= 0 {
		t.Error("overload predicted zero loss")
	}
}

func TestPredictTDMAQueueCapMonotone(t *testing.T) {
	// Shrinking the finite queue must never decrease predicted loss.
	prev := -1.0
	for _, cap := range []int{64, 8, 2, 1} {
		fx := newChainFixture(t, 4, 14, 1, voip.G711(), cap)
		pred, err := NewPredictor().PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, fp := range pred.Flows {
			if fp.Loss > worst {
				worst = fp.Loss
			}
		}
		if prev >= 0 && worst < prev {
			t.Errorf("queue cap %d: loss %g dropped below larger-queue loss %g", cap, worst, prev)
		}
		prev = worst
	}
}

func TestPredictTDMAUnscheduledLink(t *testing.T) {
	fx := newChainFixture(t, 4, 3, 2, voip.G711(), 64)
	// Drop the schedule of the last flow's first hop: that flow loses
	// everything, the others keep their service.
	victim := fx.fs.Flows[2]
	var kept []tdma.Assignment
	for _, a := range fx.sched.Assignments {
		if a.Link != victim.Path[0] {
			kept = append(kept, a)
		}
	}
	fx.sched.Assignments = kept
	pred, err := NewPredictor().PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.AllAcceptable {
		t.Fatal("flow over an unscheduled hop predicted acceptable")
	}
	fp := pred.Flows[2]
	if fp.Loss != 1 || fp.Quality.R != 0 {
		t.Errorf("unserved flow: loss=%g R=%.1f, want 1 and 0", fp.Loss, fp.Quality.R)
	}
}

func TestPredictTDMAErrors(t *testing.T) {
	fx := newChainFixture(t, 4, 3, 2, voip.G711(), 64)
	pd := NewPredictor()
	if _, err := pd.PredictTDMA(nil, fx.fs.Flows, fx.cfg); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := pd.PredictTDMA(fx.sched, nil, fx.cfg); err == nil {
		t.Error("empty flow set accepted")
	}
	bad := fx.cfg
	bad.QueueCap = 0
	if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, bad); err == nil {
		t.Error("zero queue cap accepted")
	}
	short := fx.cfg
	short.LinkAirtime = short.LinkAirtime[:1]
	if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, short); err == nil {
		t.Error("short airtime table accepted")
	}
}

func dcfConfig(codec voip.Codec) DCFConfig {
	return DCFConfig{
		PHY:               phy.IEEE80211b(),
		DataRateBps:       11e6,
		Codec:             codec,
		InterferenceRange: 250,
		RetryLimit:        7,
		QueueCap:          64,
		LateTarget:        0.01,
	}
}

func TestPredictDCFMonotone(t *testing.T) {
	// The DCF screen's verdict must be monotone in the call count: once a
	// call count fails, every larger one fails too (the capacity search
	// brackets assuming monotonicity).
	codec := voip.G711()
	pd := NewPredictor()
	failedAt := 0
	for k := 1; k <= 30; k++ {
		fx := newChainFixture(t, 4, k, 1, codec, 64)
		pred, err := pd.PredictDCF(fx.graph, fx.fs.Flows, dcfConfig(codec))
		if err != nil {
			t.Fatal(err)
		}
		if !pred.AllAcceptable && failedAt == 0 {
			failedAt = k
		}
		if pred.AllAcceptable && failedAt > 0 {
			t.Fatalf("k=%d acceptable after k=%d failed", k, failedAt)
		}
	}
	if failedAt == 0 {
		t.Error("DCF screen never predicts failure up to 30 calls on a 4-node chain")
	}
	if failedAt <= 2 {
		t.Errorf("DCF screen fails already at %d calls — far too pessimistic", failedAt)
	}
}

func TestPredictDCFErrors(t *testing.T) {
	codec := voip.G711()
	fx := newChainFixture(t, 4, 3, 1, codec, 64)
	pd := NewPredictor()
	if _, err := pd.PredictDCF(nil, fx.fs.Flows, dcfConfig(codec)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := pd.PredictDCF(fx.graph, nil, dcfConfig(codec)); err == nil {
		t.Error("empty flow set accepted")
	}
}

// TestPredictZeroAllocsSteadyState pins the screening hot path at zero
// allocations per prediction once the predictor's scratch has grown to the
// topology (enforced by make obs-allocs alongside the obs sinks).
func TestPredictZeroAllocsSteadyState(t *testing.T) {
	fx := newChainFixture(t, 6, 8, 2, voip.G711(), 64)
	pd := NewPredictor()
	if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictTDMA steady state: %.1f allocs/op, want 0", allocs)
	}
	cfg := dcfConfig(voip.G711())
	if _, err := pd.PredictDCF(fx.graph, fx.fs.Flows, cfg); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := pd.PredictDCF(fx.graph, fx.fs.Flows, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("PredictDCF steady state: %.1f allocs/op, want 0", allocs)
	}
}
