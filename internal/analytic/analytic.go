// Package analytic predicts per-flow VoIP quality over a mesh without
// running the event kernel, in the style of Kauer & Turau's analytical model
// for collision-free TDMA mesh networks with finite queues (PAPERS.md): given
// a periodic slot schedule, fixed per-flow routes, a codec packet rate and a
// finite per-link queue depth, it derives per-flow end-to-end delay quantiles
// and loss probability in closed form.
//
// The model is the screening tier of the capacity search
// (internal/core/capsearch.go): it brackets the admissible call count before
// any packet is simulated, and full-length simulation then confirms the C/C+1
// bracket edge. A misprediction therefore costs extra simulation time, never
// a wrong verdict — which is why the model may use deliberately coarse
// approximations where the exact behavior depends on event-level detail.
//
// # TDMA model
//
// Each link l is a deterministic batch-service queue emptied during its
// scheduled transmit windows, which repeat every frame:
//
//   - arrivals per frame a_l  = sum over flows crossing l of F/I (frame
//     duration F over codec packet interval I),
//   - service per frame  s_l  = packets the link's windows fit, back to back
//     with SIFS spacing after the guard interval, at the link's PHY rate,
//   - utilization        rho_l = a_l / s_l.
//
// When rho_l <= 1 the queue is stable and the delay of a packet is dominated
// by the wait for the link's next transmit window: the model sweeps packet
// creation phases across one frame and chains each phase through the
// windows of every hop (the same window-chaining rule as
// schedule.PathDelay), adding a cross-traffic queueing term that spreads
// packets of the same frame over queue positions. When rho_l > 1 the queue
// saturates: the overflow fraction 1 - 1/rho_l is lost and survivors see the
// full finite queue ahead of them (QueueCap/s_l frames of backlog drain).
//
// Finite queues also lose packets without persistent overload: if a frame's
// arrival batch a_l exceeds the queue capacity plus what the frame's windows
// drain, the excess is dropped on arrival (tail drop), exactly the
// tdmaemu behavior the emulator enforces per link.
//
// Flow loss composes per-hop survival probabilities; the per-flow delay
// sample set feeds the same playout-buffer planning and ITU-T G.107 E-model
// scoring the simulator applies to measured delays (internal/voip), so a
// prediction is comparable field by field with a measured RunResult.
//
// Assumptions (all conservative for screening): CBR sources (talk-spurt
// gating is ignored), no 802.11 aggregation (AggregateLimit > 1 only adds
// capacity), ideal clocks (sync wobble is covered by the guard interval),
// and no ARQ retransmissions.
package analytic

import (
	"errors"
	"fmt"
	"math"
	"time"

	"wimesh/internal/tdma"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// DefaultPhaseSamples is the number of packet creation phases swept across
// one frame per flow when TDMAConfig.PhaseSamples is zero.
const DefaultPhaseSamples = 32

// unserved marks a hop that can never transmit (no usable window).
const unserved = time.Duration(math.MaxInt64)

// TDMAConfig parameterizes the closed-form TDMA prediction.
type TDMAConfig struct {
	// Frame is the TDMA frame layout of the schedule.
	Frame tdma.FrameConfig
	// Guard is the guard interval at the start of each transmit window.
	Guard time.Duration
	// SIFS is the inter-frame gap between back-to-back transmissions
	// inside one window.
	SIFS time.Duration
	// LinkAirtime is the one-packet airtime per link (indexed by LinkID),
	// at the link's PHY rate for the codec's packet size.
	LinkAirtime []time.Duration
	// QueueCap is the finite per-link queue depth in packets (> 0).
	QueueCap int
	// Codec supplies the packet interval and the E-model impairment
	// parameters.
	Codec voip.Codec
	// LateTarget is the playout late-loss target the jitter buffer is
	// planned against (the core measurement pipeline uses 0.01).
	LateTarget float64
	// PhaseSamples is the number of creation phases swept per flow
	// (default DefaultPhaseSamples).
	PhaseSamples int
}

// FlowPrediction is the closed-form analogue of core.FlowResult.
type FlowPrediction struct {
	FlowID topology.FlowID
	// MeanDelay, P95Delay and MaxDelay summarize the predicted network
	// delay over the swept creation phases.
	MeanDelay, P95Delay, MaxDelay time.Duration
	// JitterBuffer is the planned playout depth: the (1 - LateTarget)
	// order statistic of the predicted delays.
	JitterBuffer time.Duration
	// LateLoss is the predicted fraction of delivered packets missing the
	// playout instant.
	LateLoss float64
	// Loss is the predicted network loss (queue overflow).
	Loss float64
	// MouthToEar is the E-model delay input.
	MouthToEar time.Duration
	// Quality is the E-model score of the prediction.
	Quality voip.Quality
}

// Prediction aggregates the closed-form verdict for one flow set.
type Prediction struct {
	// Flows holds per-flow predictions, in flow order. The slice is owned
	// by the Predictor and valid until its next Predict call.
	Flows []FlowPrediction
	// MinR is the worst predicted flow R-factor.
	MinR float64
	// AllAcceptable reports that every flow is predicted at toll quality.
	AllAcceptable bool
	// MaxUtilization is the largest per-link rho (arrivals over service).
	MaxUtilization float64
}

// window is one transmit window of a link within frame 0: service begins at
// start (slot start plus guard) and must finish by end.
type window struct {
	start, end time.Duration
}

// Predictor evaluates predictions, reusing internal scratch across calls: a
// steady-state Predict over the same topology allocates nothing, so the
// capacity search can probe dozens of call counts for less than the cost of
// simulating a single frame.
//
// A Predictor is not safe for concurrent use.
type Predictor struct {
	// Per-link scratch, indexed by LinkID.
	winCount  []int32
	winStart  []int32
	wins      []window
	arrivals  []float64
	service   []float64
	linkLoss  []float64
	satWait   []time.Duration // queue-drain penalty of a saturated link
	occupancy []time.Duration // per-packet service occupancy (airtime+SIFS)

	// Per-prediction scratch.
	samples []time.Duration
	flows   []FlowPrediction

	// DCF scratch (see dcf.go). The audibility bitset caches the node-level
	// carrier-sense relation per (network, range) pair.
	audBits    []uint64
	audWords   int
	audNet     *topology.Network
	audRange   float64
	linkEx     []float64
	nodeRate   []float64
	nodeAir    []float64
	nodeAtt    []float64
	inflAir    []float64
	inflRate   []float64
	attAcc     []float64
	nodeU      []float64
	nodeUOther []float64
	nodeServ   []float64
	nodeWq     []float64
	nodeQLoss  []float64
}

// NewPredictor returns an empty predictor; scratch grows on first use.
func NewPredictor() *Predictor { return &Predictor{} }

// sizeLinks (re)sizes per-link scratch for n links without reallocating when
// capacity suffices.
func (pd *Predictor) sizeLinks(n int) {
	if cap(pd.winCount) < n {
		pd.winCount = make([]int32, n)
		pd.winStart = make([]int32, n+1)
		pd.arrivals = make([]float64, n)
		pd.service = make([]float64, n)
		pd.linkLoss = make([]float64, n)
		pd.satWait = make([]time.Duration, n)
		pd.occupancy = make([]time.Duration, n)
	}
	pd.winCount = pd.winCount[:n]
	pd.winStart = pd.winStart[:n+1]
	pd.arrivals = pd.arrivals[:n]
	pd.service = pd.service[:n]
	pd.linkLoss = pd.linkLoss[:n]
	pd.satWait = pd.satWait[:n]
	pd.occupancy = pd.occupancy[:n]
	for i := 0; i < n; i++ {
		pd.winCount[i] = 0
		pd.arrivals[i] = 0
	}
}

// PredictTDMA evaluates the closed-form model for the flow set over the
// schedule. The returned Prediction's Flows slice is reused by the next call.
func (pd *Predictor) PredictTDMA(sched *tdma.Schedule, flows []topology.Flow, cfg TDMAConfig) (Prediction, error) {
	if sched == nil {
		return Prediction{}, errors.New("analytic: nil schedule")
	}
	if len(flows) == 0 {
		return Prediction{}, errors.New("analytic: no flows")
	}
	if cfg.QueueCap <= 0 {
		return Prediction{}, fmt.Errorf("analytic: non-positive queue cap %d", cfg.QueueCap)
	}
	if cfg.Codec.PacketInterval <= 0 {
		return Prediction{}, fmt.Errorf("analytic: codec %q has no packet interval", cfg.Codec.Name)
	}
	if cfg.LateTarget < 0 || cfg.LateTarget >= 1 {
		return Prediction{}, fmt.Errorf("analytic: late-loss target %g outside [0,1)", cfg.LateTarget)
	}
	phases := cfg.PhaseSamples
	if phases <= 0 {
		phases = DefaultPhaseSamples
	}
	nLinks := 0
	for _, a := range sched.Assignments {
		if int(a.Link) >= nLinks {
			nLinks = int(a.Link) + 1
		}
	}
	for _, f := range flows {
		for _, l := range f.Path {
			if int(l) >= nLinks {
				nLinks = int(l) + 1
			}
		}
	}
	if need := nLinks; len(cfg.LinkAirtime) < need {
		return Prediction{}, fmt.Errorf("analytic: airtime table covers %d links, schedule/flows use %d",
			len(cfg.LinkAirtime), need)
	}
	pd.sizeLinks(nLinks)
	if err := pd.buildWindows(sched, nLinks); err != nil {
		return Prediction{}, err
	}
	frame := cfg.Frame.FrameDuration

	// Per-link arrivals per frame (packets) from the flows crossing it.
	perFlow := float64(frame) / float64(cfg.Codec.PacketInterval)
	for i := range flows {
		for _, l := range flows[i].Path {
			pd.arrivals[l] += perFlow
		}
	}

	// Per-link service per frame, queueing spread and overflow loss.
	maxRho := 0.0
	for l := 0; l < nLinks; l++ {
		air := cfg.LinkAirtime[l]
		occ := air + cfg.SIFS
		pd.occupancy[l] = occ
		s := 0.0
		ws := pd.linkWindows(l)
		for _, w := range ws {
			usable := w.end - w.start - cfg.Guard
			if usable >= air {
				// First packet right after the guard, then back to back
				// with SIFS spacing while another airtime fits.
				s += 1 + math.Floor(float64(usable-air)/float64(occ))
			}
		}
		pd.service[l] = s
		a := pd.arrivals[l]
		loss := 0.0
		pd.satWait[l] = 0
		switch {
		case a == 0:
			// untraversed link
		case s == 0:
			// Scheduled capacity cannot carry a single packet: the link
			// drops everything once its queue fills.
			loss = 1
			pd.satWait[l] = unserved
		default:
			rho := a / s
			if rho > maxRho {
				maxRho = rho
			}
			if rho > 1 {
				// Persistent overload: the overflow fraction is dropped
				// and survivors drain behind a full queue.
				loss = 1 - 1/rho
				pd.satWait[l] = time.Duration(math.Ceil(float64(cfg.QueueCap)/s)) * frame
			}
			// Tail drop within a frame: arrivals beyond the queue plus
			// what the frame's own windows drain are rejected on arrival.
			if burst := a - float64(cfg.QueueCap) - s; burst > 0 {
				if bl := burst / a; bl > loss {
					loss = bl
				}
			}
		}
		pd.linkLoss[l] = loss
	}

	// Per-flow phase sweep.
	if cap(pd.samples) < phases {
		pd.samples = make([]time.Duration, phases)
	}
	pd.samples = pd.samples[:phases]
	if cap(pd.flows) < len(flows) {
		pd.flows = make([]FlowPrediction, len(flows))
	}
	pd.flows = pd.flows[:len(flows)]

	res := Prediction{MinR: 100, AllAcceptable: true, MaxUtilization: maxRho}
	for i := range flows {
		fp, err := pd.predictFlow(&flows[i], cfg, frame, phases)
		if err != nil {
			return Prediction{}, err
		}
		pd.flows[i] = fp
		if fp.Quality.R < res.MinR {
			res.MinR = fp.Quality.R
		}
		if !fp.Quality.Acceptable() {
			res.AllAcceptable = false
		}
	}
	res.Flows = pd.flows
	return res, nil
}

// buildWindows buckets the schedule's assignments into per-link window lists
// sorted by start, stored in one flat slice (counting sort by link).
func (pd *Predictor) buildWindows(sched *tdma.Schedule, nLinks int) error {
	for _, a := range sched.Assignments {
		pd.winCount[a.Link]++
	}
	total := 0
	for l := 0; l < nLinks; l++ {
		pd.winStart[l] = int32(total)
		total += int(pd.winCount[l])
	}
	pd.winStart[nLinks] = int32(total)
	if cap(pd.wins) < total {
		pd.wins = make([]window, total)
	}
	pd.wins = pd.wins[:total]
	// Cursor reuses winCount: it is consumed while placing windows.
	for l := 0; l < nLinks; l++ {
		pd.winCount[l] = pd.winStart[l]
	}
	for _, a := range sched.Assignments {
		start, err := sched.Config.SlotStart(a.Start)
		if err != nil {
			return err
		}
		end := start + time.Duration(a.Length)*sched.Config.SlotDuration()
		at := pd.winCount[a.Link]
		pd.wins[at] = window{start: start, end: end}
		pd.winCount[a.Link] = at + 1
	}
	// Insertion sort per link (window counts are tiny).
	for l := 0; l < nLinks; l++ {
		ws := pd.wins[pd.winStart[l]:pd.winStart[l+1]]
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && ws[j].start < ws[j-1].start; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
	}
	return nil
}

func (pd *Predictor) linkWindows(l int) []window {
	return pd.wins[pd.winStart[l]:pd.winStart[l+1]]
}

// departAfter returns the completion time of a one-packet transmission on
// link l entering its queue at t with ahead cross-traffic packets queued in
// front of it: service begins at the next window start (plus guard) no
// earlier than t, mirroring the emulator's once-per-window service pickup,
// and each window drains its back-to-back capacity of the queue before the
// packet advances to the next window. Returns unserved when no window fits
// the packet.
func (pd *Predictor) departAfter(l int, t time.Duration, ahead float64, cfg *TDMAConfig) time.Duration {
	ws := pd.linkWindows(l)
	if len(ws) == 0 {
		return unserved
	}
	air := cfg.LinkAirtime[l]
	occ := pd.occupancy[l]
	frame := cfg.Frame.FrameDuration
	base := (t / frame) * frame
	// Two frame iterations suffice to find the first usable window; the
	// queued cross traffic drains at service[l] packets per frame on top of
	// that (service > 0 is guaranteed by the caller: links that cannot
	// carry a packet are marked unserved before the sweep).
	iters := 2
	if ahead > 0 && pd.service[l] > 0 {
		iters += int(math.Ceil(ahead / pd.service[l]))
	}
	for iter := 0; iter < iters; iter++ {
		for _, w := range ws {
			s := base + w.start + cfg.Guard
			usable := w.end - w.start - cfg.Guard
			if s < t || usable < air {
				continue
			}
			fits := 1 + math.Floor(float64(usable-air)/float64(occ))
			if ahead < fits {
				return s + time.Duration(ahead*float64(occ)) + air
			}
			ahead -= fits
		}
		base += frame
	}
	return unserved
}

// predictFlow sweeps creation phases for one flow and scores the resulting
// delay distribution with the playout/E-model pipeline.
func (pd *Predictor) predictFlow(f *topology.Flow, cfg TDMAConfig, frame time.Duration, phases int) (FlowPrediction, error) {
	fp := FlowPrediction{FlowID: f.ID}
	// Network loss composes per-hop survival.
	survive := 1.0
	for _, l := range f.Path {
		survive *= 1 - pd.linkLoss[l]
	}
	fp.Loss = 1 - survive

	served := true
	var sum time.Duration
	for i := 0; i < phases; i++ {
		phase := frame * time.Duration(2*i+1) / time.Duration(2*phases)
		// Queue-position fraction: sample i models a packet that finds
		// posFrac of the frame's cross traffic ahead of it at every hop.
		posFrac := 0.0
		if phases > 1 {
			posFrac = float64(i) / float64(phases-1)
		}
		t := phase
		for _, l := range f.Path {
			if pd.satWait[l] == unserved {
				served = false
				break
			}
			// Queue position: posFrac of the frame's cross traffic is
			// ahead of this sample at every hop, draining through the
			// link's windows before it.
			ahead := 0.0
			if a := pd.arrivals[l]; a > 1 {
				ahead = posFrac * (a - 1)
			}
			t += pd.satWait[l]
			d := pd.departAfter(int(l), t, ahead, &cfg)
			if d == unserved {
				served = false
				break
			}
			t = d
		}
		if !served {
			break
		}
		pd.samples[i] = t - phase
		sum += t - phase
	}
	if !served {
		// A hop cannot carry the packet at all: total loss, floor quality.
		fp.Loss = 1
		fp.Quality = voip.Quality{R: 0, MOS: 1}
		return fp, nil
	}
	sortDurations(pd.samples)
	n := len(pd.samples)
	fp.MeanDelay = sum / time.Duration(n)
	fp.P95Delay = pd.samples[quantileIndex(n, 0.95)]
	fp.MaxDelay = pd.samples[n-1]

	q, po, err := voip.EvaluateWithPlayoutSorted(cfg.Codec, pd.samples, fp.Loss, cfg.LateTarget)
	if err != nil {
		return FlowPrediction{}, err
	}
	fp.JitterBuffer = po.Buffer
	fp.LateLoss = po.LateLoss
	fp.MouthToEar = voip.EndToEndDelay(cfg.Codec, po.Buffer, 0)
	fp.Quality = q
	return fp, nil
}

// quantileIndex returns the index of the ceil(q*n)-th order statistic.
func quantileIndex(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// sortDurations insertion-sorts in place (sample sets are small and nearly
// sorted; avoids the sort package's closure allocation).
func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
