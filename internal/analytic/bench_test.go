package analytic

import (
	"testing"

	"wimesh/internal/voip"
)

// BenchmarkAnalyticScreen measures one closed-form capacity probe (the unit
// the screening search runs per call count) on a 6-node chain carrying 8
// calls. The steady path must stay at 0 allocs/op — the zero-alloc test
// TestPredictZeroAllocsSteadyState enforces it, this benchmark tracks the
// latency (make obs-allocs runs both).
func BenchmarkAnalyticScreen(b *testing.B) {
	fx := newChainFixture(b, 6, 8, 2, voip.G711(), 64)
	pd := NewPredictor()
	if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pd.PredictTDMA(fx.sched, fx.fs.Flows, fx.cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticScreenDCF is the DCF-side screening probe.
func BenchmarkAnalyticScreenDCF(b *testing.B) {
	fx := newChainFixture(b, 6, 8, 2, voip.G711(), 64)
	cfg := dcfConfig(voip.G711())
	pd := NewPredictor()
	if _, err := pd.PredictDCF(fx.graph, fx.fs.Flows, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pd.PredictDCF(fx.graph, fx.fs.Flows, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
