// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock and an event queue ordered by (time, insertion sequence).
//
// All MAC/traffic simulations in this repository (internal/mac/dcf,
// internal/mac/tdmaemu, internal/voip sources) run on this kernel, so runs
// are exactly reproducible for a given seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// EventID identifies a scheduled event for cancellation.
type EventID uint64

// ErrPastTime reports an attempt to schedule an event before the current
// virtual time.
var ErrPastTime = errors.New("sim: event scheduled in the past")

type event struct {
	time time.Duration
	seq  uint64
	fn   func()
	id   EventID
	// canceled events stay in the heap and are skipped when popped.
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. The zero value is not usable; create with
// NewKernel.
type Kernel struct {
	now     time.Duration
	events  eventHeap
	nextSeq uint64
	nextID  EventID
	byID    map[EventID]*event
	// processed counts executed (non-canceled) events.
	processed uint64
}

// NewKernel returns a kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{byID: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Pending returns the number of events still queued (including canceled
// tombstones not yet drained).
func (k *Kernel) Pending() int { return len(k.events) }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn to run at absolute virtual time t.
func (k *Kernel) At(t time.Duration, fn func()) (EventID, error) {
	if t < k.now {
		return 0, fmt.Errorf("%w: at %v, now %v", ErrPastTime, t, k.now)
	}
	if fn == nil {
		return 0, errors.New("sim: nil event function")
	}
	k.nextID++
	k.nextSeq++
	e := &event{time: t, seq: k.nextSeq, fn: fn, id: k.nextID}
	heap.Push(&k.events, e)
	k.byID[e.id] = e
	return e.id, nil
}

// After schedules fn to run delay after the current virtual time.
func (k *Kernel) After(delay time.Duration, fn func()) (EventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("%w: negative delay %v", ErrPastTime, delay)
	}
	return k.At(k.now+delay, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or unknown
// event is a no-op returning false.
func (k *Kernel) Cancel(id EventID) bool {
	e, ok := k.byID[id]
	if !ok || e.canceled {
		return false
	}
	e.canceled = true
	delete(k.byID, id)
	return true
}

// Step executes the next event, advancing the clock. It returns false when
// the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		if e.canceled {
			continue
		}
		delete(k.byID, e.id)
		k.now = e.time
		k.processed++
		e.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline; the clock is left at the last executed event (or advanced
// to deadline if it is later).
func (k *Kernel) RunUntil(deadline time.Duration) {
	for {
		e := k.peek()
		if e == nil || e.time > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

func (k *Kernel) peek() *event {
	for len(k.events) > 0 {
		e := k.events[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&k.events)
	}
	return nil
}

// NewRNG returns a deterministic random stream for the given seed and stream
// index, so independent model components draw from independent streams.
func NewRNG(seed int64, stream int64) *rand.Rand {
	// SplitMix-style mixing keeps streams decorrelated for nearby seeds.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
