// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock and an event queue ordered by (time, insertion sequence).
//
// All MAC/traffic simulations in this repository (internal/mac/dcf,
// internal/mac/tdmaemu, internal/voip sources) run on this kernel, so runs
// are exactly reproducible for a given seed.
//
// The kernel is built for allocation-free steady state: events live in a
// reusable slab with a free list, the priority queue is a hand-rolled 4-ary
// heap of small value entries (no interface boxing, no per-event pointer),
// and EventID is a generation-tagged slab index so Cancel is O(1) without an
// id map. Canceled events stay in the heap as tombstones; they are drained
// when they reach the top and compacted in bulk when they outnumber half the
// queue.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"wimesh/internal/obs"
)

// EventID identifies a scheduled event for cancellation. It encodes a slab
// slot in the low 32 bits and the slot's allocation generation in the high
// 32 bits, so a stale ID (the event fired or was canceled, and the slot was
// reused) can never cancel a later event. The zero EventID is never issued.
type EventID uint64

// ErrPastTime reports an attempt to schedule an event before the current
// virtual time.
var ErrPastTime = errors.New("sim: event scheduled in the past")

// heapEntry is one priority-queue element. Ordering state (time, seq) is
// kept inline so heap sifts never touch the slab. The entry is packed to 16
// bytes — four entries per cache line, so a 4-ary node's children span at
// most two lines. seq is 32-bit: At refuses to issue more than 2^32-1 events
// per kernel, far beyond any run in this repository, so FIFO order among
// same-time events never sees a wrapped sequence.
type heapEntry struct {
	time time.Duration
	seq  uint32
	slot uint32
}

// slabEvent is the slab-resident part of an event. fn == nil marks a free
// (or fired, or canceled-and-released) slot; gen counts allocations of the
// slot so stale EventIDs are rejected.
type slabEvent struct {
	fn       func()
	gen      uint32
	canceled bool
}

// compactMinTombstones is the tombstone floor below which Cancel never
// triggers a compaction (small queues drain tombstones at the top cheaply).
const compactMinTombstones = 64

// Kernel is the simulation engine. The zero value is not usable; create with
// NewKernel.
type Kernel struct {
	now  time.Duration
	heap []heapEntry
	slab []slabEvent
	free []uint32
	// tombstones counts canceled entries still in the heap.
	tombstones int
	nextSeq    uint64
	// processed counts executed (non-canceled) events.
	processed uint64
	// Observability handles, captured from the process default at
	// construction. Nil (no-op) unless a registry is installed, so the hot
	// path pays one branch per update — pinned at 0 allocs/op by
	// BenchmarkKernelAfterStep.
	obsScheduled *obs.Counter
	obsExecuted  *obs.Counter
	obsCanceled  *obs.Counter
}

// NewKernel returns a kernel at virtual time zero.
func NewKernel() *Kernel {
	reg := obs.Default()
	return &Kernel{
		obsScheduled: reg.Counter("sim.events_scheduled"),
		obsExecuted:  reg.Counter("sim.events_executed"),
		obsCanceled:  reg.Counter("sim.events_canceled"),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Pending returns the number of live events still queued: scheduled, not
// executed and not canceled. Canceled tombstones awaiting drain or
// compaction are not counted.
func (k *Kernel) Pending() int { return len(k.heap) - k.tombstones }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn to run at absolute virtual time t.
func (k *Kernel) At(t time.Duration, fn func()) (EventID, error) {
	if t < k.now {
		return 0, fmt.Errorf("%w: at %v, now %v", ErrPastTime, t, k.now)
	}
	if fn == nil {
		return 0, errors.New("sim: nil event function")
	}
	if k.nextSeq >= 1<<32-1 {
		return 0, errors.New("sim: event sequence space exhausted")
	}
	var slot uint32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		slot = uint32(len(k.slab))
		k.slab = append(k.slab, slabEvent{})
	}
	se := &k.slab[slot]
	se.gen++ // gen >= 1 on every live slot, so a valid EventID is never 0
	se.fn = fn
	se.canceled = false
	k.nextSeq++
	k.heapPush(heapEntry{time: t, seq: uint32(k.nextSeq), slot: slot})
	k.obsScheduled.Inc()
	return EventID(uint64(se.gen)<<32 | uint64(slot)), nil
}

// After schedules fn to run delay after the current virtual time.
func (k *Kernel) After(delay time.Duration, fn func()) (EventID, error) {
	if delay < 0 {
		return 0, fmt.Errorf("%w: negative delay %v", ErrPastTime, delay)
	}
	return k.At(k.now+delay, fn)
}

// Cancel removes a scheduled event in O(1): the slab entry is marked
// canceled and its closure released; the heap entry remains as a tombstone
// until it reaches the top or a compaction sweeps it. Canceling an
// already-fired, already-canceled or unknown event is a no-op returning
// false.
func (k *Kernel) Cancel(id EventID) bool {
	slot := uint32(id)
	if int(slot) >= len(k.slab) {
		return false
	}
	se := &k.slab[slot]
	if se.gen != uint32(id>>32) || se.canceled || se.fn == nil {
		return false
	}
	se.canceled = true
	se.fn = nil
	k.tombstones++
	k.obsCanceled.Inc()
	if k.tombstones > compactMinTombstones && k.tombstones*2 > len(k.heap) {
		k.compact()
	}
	return true
}

// Step executes the next event, advancing the clock. It returns false when
// no live event remains.
func (k *Kernel) Step() bool {
	k.drainCanceled()
	if len(k.heap) == 0 {
		return false
	}
	k.stepLive()
	return true
}

// stepLive pops and executes the top event, which the caller has ensured is
// live (tombstones drained, heap non-empty).
func (k *Kernel) stepLive() {
	e := k.heapPop()
	fn := k.slab[e.slot].fn
	k.freeSlot(e.slot)
	k.now = e.time
	k.processed++
	k.obsExecuted.Inc()
	fn()
}

// RunUntil executes events until the queue is empty or the next event is
// after deadline; the clock is left at the last executed event (or advanced
// to deadline if it is later). The top entry nextTime returns is already
// drained of tombstones, so the step needs no second drain.
func (k *Kernel) RunUntil(deadline time.Duration) {
	for {
		t, ok := k.nextTime()
		if !ok || t > deadline {
			break
		}
		k.stepLive()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// nextTime returns the time of the next live event. Both Step and RunUntil
// go through it (via drainCanceled), so canceled tombstones are released
// exactly once, at the single point where they surface.
func (k *Kernel) nextTime() (time.Duration, bool) {
	k.drainCanceled()
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].time, true
}

// drainCanceled pops canceled tombstones off the top of the heap, releasing
// their slots, until the top is a live event or the heap is empty. The
// tombstone counter gates the slab lookup: with no cancellations pending
// (the common case on the hot path) the top entry is live by definition.
func (k *Kernel) drainCanceled() {
	for k.tombstones > 0 && len(k.heap) > 0 && k.slab[k.heap[0].slot].canceled {
		e := k.heapPop()
		k.freeSlot(e.slot)
		k.tombstones--
	}
}

// compact removes every tombstone from the heap in one pass and restores the
// heap invariant bottom-up, keeping the amortized cost of Cancel O(1).
func (k *Kernel) compact() {
	dst := 0
	for _, e := range k.heap {
		if k.slab[e.slot].canceled {
			k.freeSlot(e.slot)
			continue
		}
		k.heap[dst] = e
		dst++
	}
	k.heap = k.heap[:dst]
	for i := (dst - 2) / 4; i >= 0; i-- {
		k.siftDown(i)
	}
	k.tombstones = 0
}

// freeSlot returns a slab slot to the free list. The generation is bumped on
// the next allocation, so EventIDs referring to this occupancy go stale.
func (k *Kernel) freeSlot(slot uint32) {
	se := &k.slab[slot]
	se.fn = nil
	se.canceled = false
	k.free = append(k.free, slot)
}

// entryLess orders heap entries by (time, insertion sequence): FIFO among
// same-time events.
func entryLess(a, b heapEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e heapEntry) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

func (k *Kernel) heapPop() heapEntry {
	top := k.heap[0]
	n := len(k.heap) - 1
	k.heap[0] = k.heap[n]
	k.heap = k.heap[:n]
	if n > 1 {
		k.siftDown(0)
	}
	return top
}

// The heap is 4-ary: half the depth of a binary heap, so pops touch fewer
// cache lines and pushes (the common direction on this kernel's monotone
// workload) compare against fewer ancestors. Any d-ary heap pops the same
// order — (time, seq) keys are unique — so the event trajectory is
// identical to the binary heap's.
//
// Both sifts use hole insertion: the moving entry is held in a register and
// written once at its final position, halving the memory traffic of the
// swap-based formulation.

func (k *Kernel) siftUp(i int) {
	e := k.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(e, k.heap[parent]) {
			break
		}
		k.heap[i] = k.heap[parent]
		i = parent
	}
	k.heap[i] = e
}

func (k *Kernel) siftDown(i int) {
	n := len(k.heap)
	e := k.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if entryLess(k.heap[c], k.heap[min]) {
				min = c
			}
		}
		if !entryLess(k.heap[min], e) {
			break
		}
		k.heap[i] = k.heap[min]
		i = min
	}
	k.heap[i] = e
}

// NewRNG returns a deterministic random stream for the given seed and stream
// index, so independent model components draw from independent streams.
func NewRNG(seed int64, stream int64) *rand.Rand {
	// SplitMix-style mixing keeps streams decorrelated for nearby seeds.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
