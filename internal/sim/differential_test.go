package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refKernel is the pre-slab reference implementation (container/heap of
// event pointers plus a byID map), kept verbatim as the behavioral oracle
// for the slab kernel: same (time, seq) ordering, same Cancel semantics.
type refKernel struct {
	now       time.Duration
	events    refHeap
	nextSeq   uint64
	nextID    uint64
	byID      map[uint64]*refEvent
	processed uint64
}

type refEvent struct {
	time     time.Duration
	seq      uint64
	fn       func()
	id       uint64
	canceled bool
	index    int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func newRefKernel() *refKernel { return &refKernel{byID: make(map[uint64]*refEvent)} }

func (k *refKernel) At(t time.Duration, fn func()) (uint64, bool) {
	if t < k.now || fn == nil {
		return 0, false
	}
	k.nextID++
	k.nextSeq++
	e := &refEvent{time: t, seq: k.nextSeq, fn: fn, id: k.nextID}
	heap.Push(&k.events, e)
	k.byID[e.id] = e
	return e.id, true
}

func (k *refKernel) Cancel(id uint64) bool {
	e, ok := k.byID[id]
	if !ok || e.canceled {
		return false
	}
	e.canceled = true
	delete(k.byID, id)
	return true
}

func (k *refKernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*refEvent)
		if e.canceled {
			continue
		}
		delete(k.byID, e.id)
		k.now = e.time
		k.processed++
		e.fn()
		return true
	}
	return false
}

func (k *refKernel) RunUntil(deadline time.Duration) {
	for {
		var next *refEvent
		for len(k.events) > 0 {
			if e := k.events[0]; !e.canceled {
				next = e
				break
			}
			heap.Pop(&k.events)
		}
		if next == nil || next.time > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// trace is one executed event's observation: the tag passed at scheduling
// time and the clock when it ran.
type trace struct {
	tag int
	at  time.Duration
}

// TestDifferentialRandomScheduleCancel drives the slab kernel and the
// reference kernel with an identical random schedule/cancel workload
// (including cancels issued from inside running events) and requires
// identical execution order, Cancel outcomes, clocks and processed counts.
func TestDifferentialRandomScheduleCancel(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		ref := newRefKernel()

		var got, want []trace
		var liveIDs []EventID
		var refIDs []uint64

		schedule := func(tag int, delay time.Duration) {
			at := k.now + delay
			id, err := k.At(at, func() { got = append(got, trace{tag, k.Now()}) })
			if err != nil {
				t.Fatalf("seed %d: At: %v", seed, err)
			}
			rid, ok := ref.At(at, func() { want = append(want, trace{tag, ref.now}) })
			if !ok {
				t.Fatalf("seed %d: ref.At rejected", seed)
			}
			liveIDs = append(liveIDs, id)
			refIDs = append(refIDs, rid)
		}

		// Seed an initial burst, some of it self-rescheduling and
		// self-canceling.
		nextTag := 0
		for i := 0; i < 300; i++ {
			tag := nextTag
			nextTag++
			delay := time.Duration(rng.Intn(5000)) * time.Microsecond
			if rng.Intn(4) == 0 {
				// A chaining event that schedules a child when it runs.
				child := nextTag
				nextTag++
				childDelay := time.Duration(rng.Intn(1000)) * time.Microsecond
				at := delay
				id, err := k.At(at, func() {
					got = append(got, trace{tag, k.Now()})
					if _, err := k.After(childDelay, func() { got = append(got, trace{child, k.Now()}) }); err != nil {
						t.Errorf("seed %d: chained After: %v", seed, err)
					}
				})
				if err != nil {
					t.Fatalf("seed %d: At: %v", seed, err)
				}
				rid, _ := ref.At(at, func() {
					want = append(want, trace{tag, ref.now})
					ref.At(ref.now+childDelay, func() { want = append(want, trace{child, ref.now}) })
				})
				liveIDs = append(liveIDs, id)
				refIDs = append(refIDs, rid)
				continue
			}
			schedule(tag, delay)
		}

		// Interleave cancels and stepping.
		for round := 0; round < 200; round++ {
			switch rng.Intn(3) {
			case 0:
				if len(liveIDs) > 0 {
					i := rng.Intn(len(liveIDs))
					cg := k.Cancel(liveIDs[i])
					cw := ref.Cancel(refIDs[i])
					if cg != cw {
						t.Fatalf("seed %d round %d: Cancel = %v, ref %v", seed, round, cg, cw)
					}
				}
			case 1:
				sg := k.Step()
				sw := ref.Step()
				if sg != sw {
					t.Fatalf("seed %d round %d: Step = %v, ref %v", seed, round, sg, sw)
				}
			case 2:
				d := k.Now() + time.Duration(rng.Intn(800))*time.Microsecond
				k.RunUntil(d)
				ref.RunUntil(d)
			}
			if k.Now() != ref.now {
				t.Fatalf("seed %d round %d: Now = %v, ref %v", seed, round, k.Now(), ref.now)
			}
		}
		for k.Step() {
			ref.Step()
		}
		if ref.Step() {
			t.Fatalf("seed %d: reference kernel had events left", seed)
		}

		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, ref %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution %d = %+v, ref %+v", seed, i, got[i], want[i])
			}
		}
		if k.Processed() != ref.processed {
			t.Fatalf("seed %d: Processed = %d, ref %d", seed, k.Processed(), ref.processed)
		}
	}
}

// TestStaleIDAfterSlotReuse checks the generation tag: once an event fires
// (or is canceled and drained) and its slot is reused, the old EventID must
// not cancel the new occupant.
func TestStaleIDAfterSlotReuse(t *testing.T) {
	k := NewKernel()
	id1, err := k.After(time.Millisecond, func() {})
	if err != nil {
		t.Fatal(err)
	}
	k.Run()
	// id1's slot is free; the next event reuses it with a bumped generation.
	fired := false
	id2, err := k.After(time.Millisecond, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if uint32(id1) != uint32(id2) {
		t.Fatalf("slot not reused: id1 slot %d, id2 slot %d", uint32(id1), uint32(id2))
	}
	if id1 == id2 {
		t.Fatal("generations not distinguished")
	}
	if k.Cancel(id1) {
		t.Error("stale EventID canceled the slot's new occupant")
	}
	k.Run()
	if !fired {
		t.Error("second event did not fire")
	}
}

// TestCancelCompaction cancels far more events than the compaction
// threshold and checks tombstones are swept without disturbing the
// survivors' order.
func TestCancelCompaction(t *testing.T) {
	k := NewKernel()
	var ids []EventID
	var got []int
	for i := 0; i < 1000; i++ {
		i := i
		id, err := k.At(time.Duration(i)*time.Microsecond, func() { got = append(got, i) })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Cancel all the odd ones: well past compactMinTombstones and more than
	// half the heap by the end.
	for i := 1; i < 1000; i += 2 {
		if !k.Cancel(ids[i]) {
			t.Fatalf("Cancel(%d) = false", i)
		}
	}
	if k.Pending() != 500 {
		t.Fatalf("Pending = %d, want 500", k.Pending())
	}
	k.Run()
	if len(got) != 500 {
		t.Fatalf("executed %d, want 500", len(got))
	}
	for j, v := range got {
		if v != 2*j {
			t.Fatalf("got[%d] = %d, want %d", j, v, 2*j)
		}
	}
}

// TestAfterStepSteadyStateAllocs requires the After/Step hot path to be
// allocation-free once the slab and heap are warm.
func TestAfterStepSteadyStateAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the slab, heap and free list.
	for i := 0; i < 100; i++ {
		if _, err := k.After(time.Microsecond, fn); err != nil {
			t.Fatal(err)
		}
		k.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := k.After(time.Microsecond, fn); err != nil {
			t.Fatal(err)
		}
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("After+Step allocs/op = %g, want 0", allocs)
	}
}
