package sim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	if _, err := k.At(3*time.Millisecond, func() { got = append(got, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.At(1*time.Millisecond, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.At(2*time.Millisecond, func() { got = append(got, 2) }); err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", k.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := k.At(time.Millisecond, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at time.Duration
	if _, err := k.After(5*time.Millisecond, func() {
		at = k.Now()
		if _, err := k.After(2*time.Millisecond, func() { at = k.Now() }); err != nil {
			t.Errorf("nested After: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if at != 7*time.Millisecond {
		t.Errorf("nested event at %v, want 7ms", at)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	k := NewKernel()
	if _, err := k.After(time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if _, err := k.At(0, func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("got %v, want ErrPastTime", err)
	}
	if _, err := k.After(-time.Millisecond, func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("got %v, want ErrPastTime", err)
	}
	if _, err := k.After(0, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	id, err := k.After(time.Millisecond, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !k.Cancel(id) {
		t.Error("Cancel returned false for a pending event")
	}
	if k.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	k.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if k.Cancel(9999) {
		t.Error("Cancel of unknown id returned true")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 5, 9, 13} {
		d := d * time.Millisecond
		if _, err := k.At(d, func() { fired = append(fired, d) }); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(9 * time.Millisecond)
	if len(fired) != 3 {
		t.Errorf("fired %d events, want 3", len(fired))
	}
	if k.Now() != 9*time.Millisecond {
		t.Errorf("Now = %v, want 9ms", k.Now())
	}
	// Deadline beyond all events advances the clock to the deadline.
	k.RunUntil(20 * time.Millisecond)
	if len(fired) != 4 || k.Now() != 20*time.Millisecond {
		t.Errorf("fired=%d now=%v, want 4, 20ms", len(fired), k.Now())
	}
}

func TestProcessedCountsOnlyExecuted(t *testing.T) {
	k := NewKernel()
	id, err := k.After(time.Millisecond, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.After(2*time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	k.Cancel(id)
	k.Run()
	if k.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", k.Processed())
	}
}

func TestNewRNGDeterministicAndStreamed(t *testing.T) {
	a := NewRNG(7, 0)
	b := NewRNG(7, 0)
	c := NewRNG(7, 1)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va != vb {
			same = false
		}
		if va != vc {
			diff = true
		}
	}
	if !same {
		t.Error("same (seed, stream) produced different sequences")
	}
	if !diff {
		t.Error("different streams produced identical sequences")
	}
}

// Property: events always execute in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotoneClock(t *testing.T) {
	prop := func(delays []uint16) bool {
		k := NewKernel()
		var times []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			if _, err := k.At(d, func() { times = append(times, k.Now()) }); err != nil {
				return false
			}
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
