package core

import (
	"time"

	"wimesh/internal/obs"
	"wimesh/internal/topology"
)

// probeOutcome is the verdict of probing one candidate call count.
type probeOutcome struct {
	pass bool
	stop StopReason // why the probe failed (StopSchedule or StopQuality)
	run  *RunResult // the measured run when pass
}

type probeTask struct {
	done chan struct{}
	out  probeOutcome
	err  error
}

// prober memoizes probe outcomes by call count and optionally runs probes on
// a bounded pool of goroutines. Each probe is an independent deterministic
// simulation (its own kernel and seed-derived RNG streams), so an outcome is
// a pure function of the call count: speculative probes and any worker count
// produce identical results, and only the outcomes the search consumes
// influence what it returns.
type prober struct {
	probe   func(k int, fs *topology.FlowSet) (probeOutcome, error)
	prepare func(k int) (*topology.FlowSet, error)
	workers int
	sem     chan struct{}
	memo    map[int]*probeTask

	// Observability (see instrument): per-verdict counters, the live search
	// bracket, and probe trace events labeled with the probe phase. All
	// handles are nil (no-op) on an uninstrumented prober; counter/trace
	// updates are atomic/locked, so worker goroutines report safely.
	label       string
	obsProbes   *obs.Counter
	obsPass     *obs.Counter
	obsFail     *obs.Counter
	obsFallback *obs.Counter
	bracketLo   *obs.Gauge
	bracketHi   *obs.Gauge
	trace       *obs.Trace

	// Screen-only observability (instrumentScreen): whether the screen's
	// predicted bracket survived full-length verification, and the
	// screen-vs-simulation P95 delay residual when it did.
	obsBracketHit  *obs.Counter
	obsBracketMiss *obs.Counter
	residual       *obs.Histogram
}

// instrument attaches observability to the prober: label distinguishes the
// probe phase ("full" vs "pilot") in counter names and trace events.
func (p *prober) instrument(label string, reg *obs.Registry, tr *obs.Trace) {
	if reg == nil && tr == nil {
		return
	}
	p.label = label
	p.obsProbes = reg.Counter("core.probes." + label)
	p.obsPass = reg.Counter("core.probe_pass." + label)
	p.obsFail = reg.Counter("core.probe_fail." + label)
	p.obsFallback = reg.Counter("core.gallop_fallbacks")
	p.bracketLo = reg.Gauge("core.bracket_lo." + label)
	p.bracketHi = reg.Gauge("core.bracket_hi." + label)
	p.trace = tr
}

// instrumentScreen additionally attaches the screening-quality observables to
// a screen prober: core.screen_bracket_hit counts searches whose predicted
// bracket edge was confirmed by full-length simulation, core.screen_bracket_miss
// counts fallbacks to the full gallop, and core.screen_residual_ms records the
// predicted-minus-simulated worst P95 delay (milliseconds) of confirmed
// brackets.
func (p *prober) instrumentScreen(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.obsBracketHit = reg.Counter("core.screen_bracket_hit")
	p.obsBracketMiss = reg.Counter("core.screen_bracket_miss")
	p.residual = reg.Histogram("core.screen_residual_ms", -50, 50, 50)
}

// observeResidual records the screen's delay prediction error against the
// verifying full-length run at the same call count.
func (p *prober) observeResidual(pred, meas *RunResult) {
	if p.residual == nil || pred == nil || meas == nil {
		return
	}
	d := worstP95(pred) - worstP95(meas)
	p.residual.Observe(float64(d) / float64(time.Millisecond))
}

// observe records one finished probe verdict.
func (p *prober) observe(k int, t *probeTask) {
	if t.err != nil {
		return
	}
	p.obsProbes.Inc()
	pass := int64(0)
	if t.out.pass {
		pass = 1
		p.obsPass.Inc()
	} else {
		p.obsFail.Inc()
	}
	p.trace.Emit(obs.Event{Kind: obs.KindProbe, Node: -1, Link: -1, Slot: -1,
		Frame: -1, A: int64(k), B: pass, Label: p.label})
}

func newProber(probe func(int, *topology.FlowSet) (probeOutcome, error),
	prepare func(int) (*topology.FlowSet, error), workers int) *prober {
	if workers < 1 {
		workers = 1
	}
	p := &prober{probe: probe, prepare: prepare, workers: workers, memo: make(map[int]*probeTask)}
	if workers > 1 {
		p.sem = make(chan struct{}, workers)
	}
	return p
}

// start memoizes and begins the probe at k. Only the search goroutine calls
// it, so the memo map and the shared call sequence need no locking: prepare
// (which grows the sequence and materializes the k-call view) always runs
// here, before any worker goroutine touches the view — workers never read
// the growing sequence itself.
func (p *prober) start(k int) *probeTask {
	if t := p.memo[k]; t != nil {
		return t
	}
	t := &probeTask{done: make(chan struct{})}
	p.memo[k] = t
	fs, err := p.prepare(k)
	if err != nil {
		t.err = err
		close(t.done)
		return t
	}
	if p.workers <= 1 {
		t.out, t.err = p.probe(k, fs)
		p.observe(k, t)
		close(t.done)
		return t
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		t.out, t.err = p.probe(k, fs)
		p.observe(k, t)
		close(t.done)
	}()
	return t
}

// get blocks until the probe at k has an outcome, starting it if needed.
func (p *prober) get(k int) (probeOutcome, error) {
	t := p.start(k)
	<-t.done
	return t.out, t.err
}

// speculate begins probes the search is likely to need, without waiting.
// Sequential probers ignore speculation: they only run probes whose outcome
// is consumed.
func (p *prober) speculate(ks ...int) {
	if p.workers <= 1 {
		return
	}
	for _, k := range ks {
		if k >= 1 {
			p.start(k)
		}
	}
}

// drain waits for every started probe, so no worker goroutine outlives the
// search (errors of unconsumed speculative probes are deliberately dropped:
// whether a speculation ran must not change the result).
func (p *prober) drain() {
	for _, t := range p.memo {
		<-t.done
	}
}

// gallopSearch brackets the admission capacity with an exponential gallop
// (1, 2, 4, ... capped at maxCalls) and then binary-searches the failing
// bracket. The final bracket edge is verified from actually probed outcomes
// — the returned capacity k passed and k+1 failed — and any bookkeeping
// inconsistency falls back to the exact linear walk, which reuses every
// memoized outcome. With workers available, the whole gallop ladder and the
// likely next binary midpoints are probed speculatively.
func gallopSearch(p *prober, maxCalls int) (*CapacityResult, error) {
	// Every return path waits for speculative probes: no worker goroutine
	// may outlive the search, even on error returns (drain is idempotent,
	// so the caller's own deferred drain stays harmless).
	defer p.drain()
	var ladder []int
	for k := 1; k < maxCalls; k *= 2 {
		ladder = append(ladder, k)
	}
	ladder = append(ladder, maxCalls)
	p.speculate(ladder...)

	lo, hi := 0, 0
	var loOut, hiOut probeOutcome
	for _, k := range ladder {
		out, err := p.get(k)
		if err != nil {
			return nil, err
		}
		if out.pass {
			lo, loOut = k, out
		} else {
			hi, hiOut = k, out
			break
		}
	}
	p.bracketLo.Set(int64(lo))
	p.bracketHi.Set(int64(hi))
	if hi == 0 {
		// Every ladder rung up to maxCalls passed.
		return &CapacityResult{Calls: maxCalls, StoppedBy: StopMaxCalls, LastGood: loOut.run}, nil
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		// Speculate both possible next midpoints while mid runs.
		if m := lo + (mid-lo)/2; m > lo {
			p.speculate(m)
		}
		if m := mid + (hi-mid)/2; m > mid {
			p.speculate(m)
		}
		out, err := p.get(mid)
		if err != nil {
			return nil, err
		}
		if out.pass {
			lo, loOut = mid, out
		} else {
			hi, hiOut = mid, out
		}
		p.bracketLo.Set(int64(lo))
		p.bracketHi.Set(int64(hi))
	}
	if hi != lo+1 || hiOut.pass || (lo > 0 && !loOut.pass) {
		// Bracket-edge verification miss: fall back to the exact scan.
		p.obsFallback.Inc()
		return linearScan(p, maxCalls)
	}
	return &CapacityResult{Calls: lo, StoppedBy: hiOut.stop, LastGood: loOut.run}, nil
}

// screenedSearch first gallops over cheap screening probes — closed-form
// analytic predictions (internal/analytic) or short-duration pilot
// simulations — to predict the capacity, then verifies the predicted bracket
// edge with full-length probes: the result is built exclusively from
// full-probe outcomes (prediction c needs just one passing full run at c and
// one failing at c+1), so the screen's accuracy only affects speed, never the
// result. A verification miss — the full-length verdict disagrees with the
// screen — falls back to the full gallop search, which reuses the memoized
// full-length outcomes already probed. Hits and misses are counted on the
// screen prober (instrumentScreen), and a confirmed bracket also records the
// predicted-vs-simulated delay residual.
func screenedSearch(full, screen *prober, maxCalls int) (*CapacityResult, error) {
	defer full.drain()
	guess, err := gallopSearch(screen, maxCalls)
	screen.drain()
	if err != nil {
		// Screen failures are never fatal: if the error is real, the full
		// search will hit it itself.
		screen.obsBracketMiss.Inc()
		return gallopSearch(full, maxCalls)
	}
	switch c := guess.Calls; {
	case c >= maxCalls:
		out, err := full.get(maxCalls)
		if err != nil {
			return nil, err
		}
		if out.pass {
			screen.obsBracketHit.Inc()
			screen.observeResidual(guess.LastGood, out.run)
			return &CapacityResult{Calls: maxCalls, StoppedBy: StopMaxCalls, LastGood: out.run}, nil
		}
	case c == 0:
		out, err := full.get(1)
		if err != nil {
			return nil, err
		}
		if !out.pass {
			screen.obsBracketHit.Inc()
			return &CapacityResult{StoppedBy: out.stop}, nil
		}
	default:
		full.speculate(c + 1)
		loOut, err := full.get(c)
		if err != nil {
			return nil, err
		}
		hiOut, err := full.get(c + 1)
		if err != nil {
			return nil, err
		}
		if loOut.pass && !hiOut.pass {
			screen.obsBracketHit.Inc()
			screen.observeResidual(guess.LastGood, loOut.run)
			return &CapacityResult{Calls: c, StoppedBy: hiOut.stop, LastGood: loOut.run}, nil
		}
	}
	screen.obsBracketMiss.Inc()
	return gallopSearch(full, maxCalls)
}

// linearScan is the reference search: probe k = 1, 2, 3, ... until the first
// failure. It consumes memoized outcomes where present, so the galloping
// fallback pays only for the probes not already run.
func linearScan(p *prober, maxCalls int) (*CapacityResult, error) {
	res := &CapacityResult{StoppedBy: StopMaxCalls}
	for k := 1; k <= maxCalls; k++ {
		out, err := p.get(k)
		if err != nil {
			return nil, err
		}
		if !out.pass {
			res.StoppedBy = out.stop
			return res, nil
		}
		res.Calls, res.LastGood = k, out.run
	}
	return res, nil
}
