package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// syntheticProber builds a prober over a pure verdict function, counting how
// many distinct call counts are actually probed.
func syntheticProber(capacity int, stop StopReason, workers int, probed *int) *prober {
	return newProber(
		func(k int, _ *topology.FlowSet) (probeOutcome, error) {
			if k <= capacity {
				return probeOutcome{pass: true, run: &RunResult{MinR: float64(100 - k)}}, nil
			}
			return probeOutcome{stop: stop}, nil
		},
		func(k int) (*topology.FlowSet, error) {
			*probed++
			return nil, nil
		},
		workers)
}

func TestGallopSearchMatchesLinear(t *testing.T) {
	for _, maxCalls := range []int{1, 2, 5, 12, 40, 60} {
		for capacity := 0; capacity <= maxCalls+1; capacity++ {
			for _, stop := range []StopReason{StopQuality, StopSchedule} {
				var nLin, nGal int
				lin, err := linearScan(syntheticProber(capacity, stop, 1, &nLin), maxCalls)
				if err != nil {
					t.Fatal(err)
				}
				gal, err := gallopSearch(syntheticProber(capacity, stop, 1, &nGal), maxCalls)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lin, gal) {
					t.Fatalf("cap=%d max=%d stop=%s: linear %+v != gallop %+v",
						capacity, maxCalls, stop, lin, gal)
				}
				wantCalls := capacity
				if wantCalls > maxCalls {
					wantCalls = maxCalls
				}
				if gal.Calls != wantCalls {
					t.Fatalf("cap=%d max=%d: got %d calls", capacity, maxCalls, gal.Calls)
				}
				if capacity >= maxCalls && gal.StoppedBy != StopMaxCalls {
					t.Fatalf("cap=%d max=%d: stop=%s, want max-calls", capacity, maxCalls, gal.StoppedBy)
				}
			}
		}
	}
}

// TestGallopProbeCount pins the headline saving: O(log n) probes instead of
// O(n) on the linear walk.
func TestGallopProbeCount(t *testing.T) {
	for _, tc := range []struct {
		capacity, maxCalls, atMost int
	}{
		{16, 40, 12},
		{30, 40, 12},
		{39, 40, 13},
		{3, 60, 11},
	} {
		var nLin, nGal int
		if _, err := linearScan(syntheticProber(tc.capacity, StopQuality, 1, &nLin), tc.maxCalls); err != nil {
			t.Fatal(err)
		}
		if _, err := gallopSearch(syntheticProber(tc.capacity, StopQuality, 1, &nGal), tc.maxCalls); err != nil {
			t.Fatal(err)
		}
		if nGal > tc.atMost {
			t.Errorf("cap=%d max=%d: gallop probed %d counts, want <= %d", tc.capacity, tc.maxCalls, nGal, tc.atMost)
		}
		if nLin != tc.capacity+1 {
			t.Errorf("cap=%d: linear probed %d counts, want %d", tc.capacity, nLin, tc.capacity+1)
		}
		if nGal >= nLin && tc.capacity > 4 {
			t.Errorf("cap=%d: gallop (%d probes) no cheaper than linear (%d)", tc.capacity, nGal, nLin)
		}
	}
}

// TestGallopSearchWorkers checks that speculative parallel probing returns
// the same result as the sequential prober even when probe latency is
// adversarially skewed.
func TestGallopSearchWorkers(t *testing.T) {
	for capacity := 0; capacity <= 21; capacity++ {
		slow := newProber(
			func(k int, _ *topology.FlowSet) (probeOutcome, error) {
				time.Sleep(time.Duration((k*7)%5) * time.Millisecond)
				if k <= capacity {
					return probeOutcome{pass: true, run: &RunResult{MinR: float64(100 - k)}}, nil
				}
				return probeOutcome{stop: StopQuality}, nil
			},
			func(int) (*topology.FlowSet, error) { return nil, nil },
			4)
		got, err := gallopSearch(slow, 20)
		if err != nil {
			t.Fatal(err)
		}
		var n int
		want, err := gallopSearch(syntheticProber(capacity, StopQuality, 1, &n), 20)
		if err != nil {
			t.Fatal(err)
		}
		slow.drain()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cap=%d: workers=4 %+v != workers=1 %+v", capacity, got, want)
		}
	}
}

// TestScreenedSearchMatchesLinear sweeps screen predictions from exact to
// wildly wrong: the result must always equal the linear reference, because
// the screen only picks which full probes run first.
func TestScreenedSearchMatchesLinear(t *testing.T) {
	for _, pilotCap := range []int{0, 3, 9, 20, 25} {
		for capacity := 0; capacity <= 21; capacity++ {
			var nFull, n int
			full := syntheticProber(capacity, StopQuality, 1, &nFull)
			pilot := syntheticProber(pilotCap, StopQuality, 1, new(int))
			got, err := screenedSearch(full, pilot, 20)
			if err != nil {
				t.Fatal(err)
			}
			want, err := linearScan(syntheticProber(capacity, StopQuality, 1, &n), 20)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pilot=%d cap=%d: piloted %+v != linear %+v", pilotCap, capacity, got, want)
			}
			if pilotCap == capacity && capacity >= 1 && capacity < 20 && nFull > 2 {
				t.Errorf("exact pilot cap=%d: %d full probes, want 2", capacity, nFull)
			}
		}
	}
}

func TestSearchErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	p := newProber(
		func(k int, _ *topology.FlowSet) (probeOutcome, error) {
			if k == 4 {
				return probeOutcome{}, boom
			}
			return probeOutcome{pass: true, run: &RunResult{}}, nil
		},
		func(int) (*topology.FlowSet, error) { return nil, nil },
		1)
	if _, err := gallopSearch(p, 40); !errors.Is(err, boom) {
		t.Errorf("gallop error = %v, want boom", err)
	}
	p2 := newProber(
		func(k int, _ *topology.FlowSet) (probeOutcome, error) {
			return probeOutcome{pass: true, run: &RunResult{}}, nil
		},
		func(k int) (*topology.FlowSet, error) {
			if k >= 2 {
				return nil, boom
			}
			return nil, nil
		},
		1)
	if _, err := linearScan(p2, 40); !errors.Is(err, boom) {
		t.Errorf("linear prepare error = %v, want boom", err)
	}
}

// TestCallSequenceMatchesGatewayCalls pins the incremental call builder to
// the from-scratch GatewayCalls construction at every prefix.
func TestCallSequenceMatchesGatewayCalls(t *testing.T) {
	topo, err := topology.Grid(3, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, downlink := range []bool{false, true} {
		downlink := downlink
		t.Run(fmt.Sprintf("downlink=%v", downlink), func(t *testing.T) {
			codec := voip.G711()
			seq, err := newCallSequence(topo, codec, 150*time.Millisecond, downlink)
			if err != nil {
				t.Fatal(err)
			}
			for n := 0; n <= 12; n++ {
				if err := seq.extend(n); err != nil {
					t.Fatal(err)
				}
				view := seq.view(n)
				ref, err := GatewayCalls(topo, n, codec, 150*time.Millisecond, downlink)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(view.Flows, ref.Flows) {
					t.Fatalf("n=%d: incremental view diverges from GatewayCalls", n)
				}
			}
		})
	}
}

func TestCapacityMaxCallsBelowOne(t *testing.T) {
	sys := chainSystem(t, 4)
	res, err := sys.VoIPCapacityTDMA(CapacityConfig{MaxCalls: -3, Run: RunConfig{Duration: time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 0 || res.StoppedBy != StopMaxCalls || res.LastGood != nil {
		t.Errorf("negative MaxCalls: %+v", res)
	}
}
