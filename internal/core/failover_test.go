package core

import (
	"testing"
	"time"

	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

func TestRunTDMAFailoverRingReroutes(t *testing.T) {
	topo, err := topology.Ring(6, 200)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(topo)
	if err != nil {
		t.Fatal(err)
	}
	// One call from node 3 to the gateway (node 0): a 3-hop path with a
	// 3-hop alternative around the other side of the ring.
	fs, err := GatewayCalls(topo, 3, voip.G711(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Find the flow from node 3 and the first link of its path.
	var victim topology.Flow
	found := false
	for _, f := range fs.Flows {
		if f.Src == 3 {
			victim = f
			found = true
		}
	}
	if !found {
		t.Fatal("no flow from node 3")
	}
	plan, err := sys.PlanVoIP(fs, MethodPathMajor, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunTDMAFailover(plan, fs, RunConfig{Duration: 9 * time.Second, Seed: 6},
		FailoverConfig{
			FailedLink:  victim.Path[0],
			FailAt:      3 * time.Second,
			DetectDelay: 200 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReroutedFlows < 1 {
		t.Fatalf("no flows rerouted (result %+v)", res)
	}
	if res.MAC.FailureDrops == 0 {
		t.Error("no failure drops recorded during the outage")
	}
	for _, f := range res.Flows {
		if f.FlowID != victim.ID {
			// Unaffected flows stay essentially clean (in-flight packets at
			// phase/run boundaries allow a sliver of loss).
			if f.Before.Loss > 0.02 || f.After.Loss > 0.02 {
				t.Errorf("bystander flow %d lost packets: %+v", f.FlowID, f)
			}
			continue
		}
		if !f.Rerouted {
			t.Error("victim flow not marked rerouted")
		}
		if f.Before.Loss > 0.02 {
			t.Errorf("victim lost packets before the failure: %+v", f.Before)
		}
		if f.During.Loss == 0 {
			t.Errorf("victim lost nothing during the outage: %+v", f.During)
		}
		// Post-swap delivery recovers (packets created after the swap ride
		// the new path; allow stragglers).
		if f.After.Loss > 0.05 {
			t.Errorf("victim loss after recovery = %g: %+v", f.After.Loss, f.After)
		}
	}
}

func TestRunTDMAFailoverValidation(t *testing.T) {
	sys := chainSystem(t, 3)
	fs, err := GatewayCalls(sys.Topo, 1, voip.G711(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanVoIP(fs, MethodGreedy, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunTDMAFailover(nil, fs, RunConfig{}, FailoverConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := sys.RunTDMAFailover(plan, fs, RunConfig{}, FailoverConfig{FailedLink: 999}); err == nil {
		t.Error("unknown link accepted")
	}
	// Timeline outside the run.
	if _, err := sys.RunTDMAFailover(plan, fs, RunConfig{Duration: time.Second},
		FailoverConfig{FailedLink: fs.Flows[0].Path[0], FailAt: 2 * time.Second}); err == nil {
		t.Error("failure after run end accepted")
	}
}

func TestFailoverNoAlternativePathKeepsFailing(t *testing.T) {
	// A chain has no alternative route: the victim flow stays broken.
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 3, voip.G711(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanVoIP(fs, MethodPathMajor, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	var victim topology.Flow
	for _, f := range fs.Flows {
		if f.Src == 3 {
			victim = f
		}
	}
	res, err := sys.RunTDMAFailover(plan, fs, RunConfig{Duration: 6 * time.Second, Seed: 7},
		FailoverConfig{FailedLink: victim.Path[0], FailAt: 2 * time.Second,
			DetectDelay: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.FlowID != victim.ID {
			continue
		}
		if f.Rerouted {
			t.Error("victim rerouted on a chain with no alternative")
		}
		if f.After.Loss < 0.9 {
			t.Errorf("victim loss after failure = %g, want ~1 (no route)", f.After.Loss)
		}
	}
}
