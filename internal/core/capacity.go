package core

import (
	"errors"
	"fmt"
	"time"

	"wimesh/internal/obs"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// SearchStrategy selects how the capacity search probes call counts.
type SearchStrategy int

const (
	// SearchGalloping (the default) brackets the capacity with an
	// exponential gallop followed by a binary search of the failing
	// bracket, aborting provably failing probe runs early. Under a
	// pass/fail verdict monotone in the call count it returns exactly what
	// SearchLinear returns while probing O(log n) candidates; the
	// differential suite pins that equality on every R3/R17 scenario.
	SearchGalloping SearchStrategy = iota
	// SearchLinear is the preserved reference scan: k = 1, 2, 3, ... with
	// full-length sequential runs and no early abort.
	SearchLinear
)

// CapacityConfig parameterizes the call-capacity search of experiment R3:
// calls are added one at a time until the network can no longer serve all of
// them at toll quality.
type CapacityConfig struct {
	// MaxCalls caps the search (default 60).
	MaxCalls int
	// Method is the TDMA planner (default MethodPathMajor; MethodILP is
	// exact but slow beyond small meshes).
	Method PlanMethod
	// Run configures each simulation run.
	Run RunConfig
	// DelayBound is each call's end-to-end delay budget (default 150 ms).
	DelayBound time.Duration
	// Downlink adds a gateway->node flow per call in addition to the
	// node->gateway uplink (a full duplex call).
	Downlink bool
	// Search selects the probe strategy (default SearchGalloping).
	Search SearchStrategy
	// Screen selects the screening predictor of the galloping search
	// (default ScreenAuto: the closed-form analytic model). The screen
	// only brackets the capacity; full-length simulation always confirms
	// the C/C+1 edge, so every mode returns identical results. Ignored by
	// SearchLinear.
	Screen ScreenMode
	// Workers caps concurrent speculative probes (default 1: sequential).
	// Probe outcomes are pure functions of the call count, so any worker
	// count yields identical results. Ignored by SearchLinear.
	Workers int
}

func (c *CapacityConfig) applyDefaults() {
	if c.MaxCalls == 0 {
		c.MaxCalls = 60
	}
	if c.Method == 0 {
		c.Method = MethodPathMajor
	}
	if c.DelayBound == 0 {
		c.DelayBound = 150 * time.Millisecond
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	c.Run.applyDefaults()
}

// StopReason reports what ended a capacity search.
type StopReason string

// Stop reasons.
const (
	// StopSchedule: no feasible schedule for one more call.
	StopSchedule StopReason = "schedule-infeasible"
	// StopQuality: one more call pushed a flow below toll quality.
	StopQuality StopReason = "quality"
	// StopMaxCalls: the search cap was reached while still acceptable.
	StopMaxCalls StopReason = "max-calls"
)

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// Calls is the largest number of calls served at toll quality.
	Calls int
	// StoppedBy explains the limit.
	StoppedBy StopReason
	// LastGood is the run result at Calls (nil when Calls is 0).
	LastGood *RunResult
}

// callSequence builds the round-robin gateway call pattern incrementally:
// growing from n to n+1 calls appends flows to one canonical set instead of
// rebuilding it, and per-caller shortest paths are resolved once and shared
// by every call count. Views handed to probes are capacity-capped slices of
// the canonical set, so later extensions never leak into a view and
// concurrent probes can read their views race-free.
type callSequence struct {
	topo      *topology.Network
	gw        topology.NodeID
	callers   []topology.NodeID
	rate      float64
	bound     time.Duration
	downlink  bool
	fs        *topology.FlowSet
	calls     int
	upPaths   []topology.Path
	downPaths []topology.Path
}

func newCallSequence(topo *topology.Network, codec voip.Codec, bound time.Duration, downlink bool) (*callSequence, error) {
	gw, ok := topo.Gateway()
	if !ok {
		return nil, errors.New("core: topology has no gateway")
	}
	var callers []topology.NodeID
	for _, nd := range topo.Nodes() {
		if nd.ID != gw {
			callers = append(callers, nd.ID)
		}
	}
	if len(callers) == 0 {
		return nil, errors.New("core: no non-gateway nodes")
	}
	return &callSequence{
		topo:      topo,
		gw:        gw,
		callers:   callers,
		rate:      codec.BandwidthBps(),
		bound:     bound,
		downlink:  downlink,
		fs:        topology.NewFlowSet(topo),
		upPaths:   make([]topology.Path, len(callers)),
		downPaths: make([]topology.Path, len(callers)),
	}, nil
}

func (cs *callSequence) pathTo(caller topology.NodeID, ci int, down bool) (topology.Path, error) {
	cache := cs.upPaths
	src, dst := caller, cs.gw
	if down {
		cache = cs.downPaths
		src, dst = cs.gw, caller
	}
	if cache[ci] == nil {
		p, err := cs.topo.ShortestPath(src, dst)
		if err != nil {
			return nil, fmt.Errorf("add flow %d->%d: %w", src, dst, err)
		}
		cache[ci] = p
	}
	return cache[ci], nil
}

// extend materializes calls up to n (no-op when already there).
func (cs *callSequence) extend(n int) error {
	for ; cs.calls < n; cs.calls++ {
		i := cs.calls
		ci := i % len(cs.callers)
		caller := cs.callers[ci]
		up, err := cs.pathTo(caller, ci, false)
		if err != nil {
			return fmt.Errorf("core: call %d: %w", i, err)
		}
		if _, err := cs.fs.AddOnPath(caller, cs.gw, cs.rate, cs.bound, up); err != nil {
			return fmt.Errorf("core: call %d: %w", i, err)
		}
		if cs.downlink {
			down, err := cs.pathTo(caller, ci, true)
			if err != nil {
				return fmt.Errorf("core: call %d downlink: %w", i, err)
			}
			if _, err := cs.fs.AddOnPath(cs.gw, caller, cs.rate, cs.bound, down); err != nil {
				return fmt.Errorf("core: call %d downlink: %w", i, err)
			}
		}
	}
	return nil
}

// view returns the n-call flow set as an immutable capacity-capped slice of
// the canonical set.
func (cs *callSequence) view(n int) *topology.FlowSet {
	k := n
	if cs.downlink {
		k = 2 * n
	}
	return &topology.FlowSet{Net: cs.fs.Net, Flows: cs.fs.Flows[:k:k]}
}

// GatewayCalls builds a flow set of n VoIP calls between distinct
// non-gateway nodes and the gateway (uplink; plus downlink when downlink is
// set), assigning callers round-robin over nodes sorted by ID.
func GatewayCalls(topo *topology.Network, n int, codec voip.Codec, bound time.Duration, downlink bool) (*topology.FlowSet, error) {
	seq, err := newCallSequence(topo, codec, bound, downlink)
	if err != nil {
		return nil, err
	}
	if err := seq.extend(n); err != nil {
		return nil, err
	}
	return seq.view(n), nil
}

// VoIPCapacityTDMA finds the TDMA-emulation call capacity: the largest
// number of gateway calls that can be scheduled and served at toll quality.
func (s *System) VoIPCapacityTDMA(cfg CapacityConfig) (*CapacityResult, error) {
	cfg.applyDefaults()
	return s.capacitySearch(cfg, true)
}

// VoIPCapacityDCF finds the DCF baseline call capacity under the same call
// pattern (no admission control: calls degrade until quality breaks).
func (s *System) VoIPCapacityDCF(cfg CapacityConfig) (*CapacityResult, error) {
	cfg.applyDefaults()
	return s.capacitySearch(cfg, false)
}

func (s *System) capacitySearch(cfg CapacityConfig, tdma bool) (*CapacityResult, error) {
	if cfg.MaxCalls < 1 {
		return &CapacityResult{StoppedBy: StopMaxCalls}, nil
	}
	seq, err := newCallSequence(s.Topo, cfg.Run.Codec, cfg.DelayBound, cfg.Downlink)
	if err != nil {
		return nil, err
	}
	probeRun := cfg.Run
	probeRun.AbortOnProvableFailure = cfg.Search != SearchLinear
	prepare := func(k int) (*topology.FlowSet, error) {
		if err := seq.extend(k); err != nil {
			return nil, err
		}
		return seq.view(k), nil
	}
	mkProbe := func(rc RunConfig) func(int, *topology.FlowSet) (probeOutcome, error) {
		return func(k int, fs *topology.FlowSet) (probeOutcome, error) {
			if tdma {
				plan, planErr := s.PlanVoIP(fs, cfg.Method, rc.Codec)
				if planErr != nil {
					return probeOutcome{stop: StopSchedule}, nil
				}
				run, runErr := s.RunTDMA(plan, fs, rc)
				if runErr != nil {
					return probeOutcome{}, runErr
				}
				return outcomeOf(run), nil
			}
			run, runErr := s.RunDCF(fs, rc)
			if runErr != nil {
				return probeOutcome{}, runErr
			}
			return outcomeOf(run), nil
		}
	}
	workers := cfg.Workers
	if cfg.Search == SearchLinear {
		workers = 1
	}
	reg := obs.Or(cfg.Run.Metrics)
	tr := obs.OrTrace(cfg.Run.Trace)
	p := newProber(mkProbe(probeRun), prepare, workers)
	p.instrument("full", reg, tr)
	defer p.drain()
	if cfg.Search == SearchLinear {
		return linearScan(p, cfg.MaxCalls)
	}
	switch cfg.Screen {
	case ScreenNone:
		return gallopSearch(p, cfg.MaxCalls)
	case ScreenPilot:
		// A short pilot search predicts the capacity so the full-length
		// search usually probes just the bracket edge; the pilot's outcomes
		// are never consumed for the result (see screenedSearch). Skipped
		// when the run is already cheap enough that the pilot would cost
		// more than it saves.
		if pilotDur := probeRun.Duration / pilotDivisor; pilotDur >= minPilotDuration {
			pilotRun := probeRun
			pilotRun.Duration = pilotDur
			pilotRun.WarmUp = pilotDur / 10
			pilotRun.abortHeuristically = true
			pp := newProber(mkProbe(pilotRun), prepare, workers)
			pp.instrument("pilot", reg, tr)
			pp.instrumentScreen(reg)
			defer pp.drain()
			return screenedSearch(p, pp, cfg.MaxCalls)
		}
		return gallopSearch(p, cfg.MaxCalls)
	default: // ScreenAuto, ScreenAnalytic
		// The closed-form screen costs microseconds per probe, so it pays
		// off at every run duration; the verified bracket edge (one full
		// passing run at C, one failing at C+1) is the only simulation the
		// search needs when the prediction holds.
		ap, err := s.analyticProber(cfg, tdma, prepare)
		if err != nil {
			return nil, err
		}
		ap.instrument("analytic", reg, tr)
		ap.instrumentScreen(reg)
		return screenedSearch(p, ap, cfg.MaxCalls)
	}
}

// Pilot sizing: pilot runs simulate 1/pilotDivisor of the configured
// duration, and searches whose pilot would fall under minPilotDuration skip
// the pilot entirely (the run is too short for the prediction to pay off).
const (
	pilotDivisor     = 3
	minPilotDuration = 500 * time.Millisecond
)

func outcomeOf(run *RunResult) probeOutcome {
	if !run.AllAcceptable {
		return probeOutcome{stop: StopQuality}
	}
	return probeOutcome{pass: true, run: run}
}
