package core

import (
	"errors"
	"fmt"
	"time"

	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// CapacityConfig parameterizes the call-capacity search of experiment R3:
// calls are added one at a time until the network can no longer serve all of
// them at toll quality.
type CapacityConfig struct {
	// MaxCalls caps the search (default 60).
	MaxCalls int
	// Method is the TDMA planner (default MethodPathMajor; MethodILP is
	// exact but slow beyond small meshes).
	Method PlanMethod
	// Run configures each simulation run.
	Run RunConfig
	// DelayBound is each call's end-to-end delay budget (default 150 ms).
	DelayBound time.Duration
	// Downlink adds a gateway->node flow per call in addition to the
	// node->gateway uplink (a full duplex call).
	Downlink bool
}

func (c *CapacityConfig) applyDefaults() {
	if c.MaxCalls == 0 {
		c.MaxCalls = 60
	}
	if c.Method == 0 {
		c.Method = MethodPathMajor
	}
	if c.DelayBound == 0 {
		c.DelayBound = 150 * time.Millisecond
	}
	c.Run.applyDefaults()
}

// StopReason reports what ended a capacity search.
type StopReason string

// Stop reasons.
const (
	// StopSchedule: no feasible schedule for one more call.
	StopSchedule StopReason = "schedule-infeasible"
	// StopQuality: one more call pushed a flow below toll quality.
	StopQuality StopReason = "quality"
	// StopMaxCalls: the search cap was reached while still acceptable.
	StopMaxCalls StopReason = "max-calls"
)

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// Calls is the largest number of calls served at toll quality.
	Calls int
	// StoppedBy explains the limit.
	StoppedBy StopReason
	// LastGood is the run result at Calls (nil when Calls is 0).
	LastGood *RunResult
}

// GatewayCalls builds a flow set of n VoIP calls between distinct
// non-gateway nodes and the gateway (uplink; plus downlink when downlink is
// set), assigning callers round-robin over nodes sorted by ID.
func GatewayCalls(topo *topology.Network, n int, codec voip.Codec, bound time.Duration, downlink bool) (*topology.FlowSet, error) {
	gw, ok := topo.Gateway()
	if !ok {
		return nil, errors.New("core: topology has no gateway")
	}
	var callers []topology.NodeID
	for _, nd := range topo.Nodes() {
		if nd.ID != gw {
			callers = append(callers, nd.ID)
		}
	}
	if len(callers) == 0 {
		return nil, errors.New("core: no non-gateway nodes")
	}
	fs := topology.NewFlowSet(topo)
	rate := codec.BandwidthBps()
	for i := 0; i < n; i++ {
		caller := callers[i%len(callers)]
		if _, err := fs.Add(caller, gw, rate, bound); err != nil {
			return nil, fmt.Errorf("core: call %d: %w", i, err)
		}
		if downlink {
			if _, err := fs.Add(gw, caller, rate, bound); err != nil {
				return nil, fmt.Errorf("core: call %d downlink: %w", i, err)
			}
		}
	}
	return fs, nil
}

// VoIPCapacityTDMA finds the TDMA-emulation call capacity: the largest
// number of gateway calls that can be scheduled and served at toll quality.
func (s *System) VoIPCapacityTDMA(cfg CapacityConfig) (*CapacityResult, error) {
	cfg.applyDefaults()
	res := &CapacityResult{StoppedBy: StopMaxCalls}
	for k := 1; k <= cfg.MaxCalls; k++ {
		fs, err := GatewayCalls(s.Topo, k, cfg.Run.Codec, cfg.DelayBound, cfg.Downlink)
		if err != nil {
			return nil, err
		}
		plan, err := s.PlanVoIP(fs, cfg.Method, cfg.Run.Codec)
		if err != nil {
			res.StoppedBy = StopSchedule
			return res, nil
		}
		run, err := s.RunTDMA(plan, fs, cfg.Run)
		if err != nil {
			return nil, err
		}
		if !run.AllAcceptable {
			res.StoppedBy = StopQuality
			return res, nil
		}
		res.Calls, res.LastGood = k, run
	}
	return res, nil
}

// VoIPCapacityDCF finds the DCF baseline call capacity under the same call
// pattern (no admission control: calls degrade until quality breaks).
func (s *System) VoIPCapacityDCF(cfg CapacityConfig) (*CapacityResult, error) {
	cfg.applyDefaults()
	res := &CapacityResult{StoppedBy: StopMaxCalls}
	for k := 1; k <= cfg.MaxCalls; k++ {
		fs, err := GatewayCalls(s.Topo, k, cfg.Run.Codec, cfg.DelayBound, cfg.Downlink)
		if err != nil {
			return nil, err
		}
		run, err := s.RunDCF(fs, cfg.Run)
		if err != nil {
			return nil, err
		}
		if !run.AllAcceptable {
			res.StoppedBy = StopQuality
			return res, nil
		}
		res.Calls, res.LastGood = k, run
	}
	return res, nil
}
