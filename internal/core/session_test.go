package core

import (
	"context"
	"fmt"
	"testing"

	"wimesh/internal/admit"
	"wimesh/internal/schedule"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// TestSessionAdmitMatchesPlanDemand admits one call and checks the engine's
// per-link demand equals what Plan's SlotDemand conversion computes for the
// identical flow — the serving path and the planning path must price a call
// the same way.
func TestSessionAdmitMatchesPlanDemand(t *testing.T) {
	topo, err := topology.Grid(3, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(topo)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	codec := voip.G711()
	ctx := context.Background()
	dec, path, err := sess.AdmitCall(ctx, "call-a", 0, 8, codec)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("one call rejected: %+v", dec)
	}
	if dec.Window <= 0 || sess.Window() != dec.Window {
		t.Fatalf("window %d, session window %d", dec.Window, sess.Window())
	}
	if sess.NumCalls() != 1 {
		t.Fatalf("NumCalls = %d, want 1", sess.NumCalls())
	}

	// Oracle: the planner's demand conversion over a one-flow set.
	fs := topology.NewFlowSet(topo)
	if _, err := fs.AddOnPath(0, 8, codec.BandwidthBps(), 0, path); err != nil {
		t.Fatal(err)
	}
	perLink := make(map[topology.LinkID]int)
	slots, err := sys.CallSlots(path, codec)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range path {
		perLink[l] = slots[i]
	}
	want, err := schedule.SlotDemand(fs, sys.Frame, func(l topology.LinkID) int {
		b, err := sys.BytesPerSlot(codec.PacketBytes())
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(perLink) {
		t.Fatalf("demand links: CallSlots %d, SlotDemand %d", len(perLink), len(want))
	}
	for l, d := range want {
		if perLink[l] != d {
			t.Errorf("link %d: CallSlots %d, SlotDemand %d", l, perLink[l], d)
		}
	}

	if err := sess.ReleaseCall("call-a"); err != nil {
		t.Fatal(err)
	}
	if sess.NumCalls() != 0 || sess.Window() != 0 {
		t.Fatalf("after release: %d calls, window %d", sess.NumCalls(), sess.Window())
	}
	st := sess.Stats()
	if st.Admitted != 1 || st.Releases != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionRejectsBeyondMaxWindow pins the rejection path: a one-slot
// window cannot hold a multi-hop call (its hops conflict pairwise), so the
// engine must reject without error.
func TestSessionRejectsBeyondMaxWindow(t *testing.T) {
	topo, err := topology.Grid(1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(topo)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sys.NewSession(SessionConfig{MaxWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := sess.AdmitCall(context.Background(), "big", 0, 3, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatalf("3-hop call admitted into a 1-slot window: %+v", dec)
	}
	if sess.NumCalls() != 0 {
		t.Fatalf("rejected call left state: %d calls", sess.NumCalls())
	}
	if _, _, err := sess.AdmitCall(context.Background(), "x", 0, 99, voip.G711()); err == nil {
		t.Fatal("routing to a nonexistent node succeeded")
	}
	if err := sess.ReleaseCall("missing"); err == nil {
		t.Fatal("releasing an unknown call succeeded")
	}
	var _ admit.Stats = sess.Stats()
}

// TestSessionAdmitService covers the class-aware serving entry points: the
// video and bulk traffic models convert to heavier per-hop demand than a
// voice codec, AdmitService tags flows with the requested class, and with
// Preempt on a voice call squeezed out by best-effort traffic gets admitted
// by eviction.
func TestSessionAdmitService(t *testing.T) {
	topo, err := topology.Grid(3, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(topo)
	if err != nil {
		t.Fatal(err)
	}
	path, err := topo.ShortestPath(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	videoSlots, err := sys.ServiceSlots(path, voip.Video())
	if err != nil {
		t.Fatal(err)
	}
	voiceSlots, err := sys.CallSlots(path, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	for i := range path {
		if videoSlots[i] < voiceSlots[i] {
			t.Fatalf("hop %d: 384k video wants %d slots, voice %d", i, videoSlots[i], voiceSlots[i])
		}
	}
	if _, err := sys.ServiceSlots(path, voip.Service{Name: "bad"}); err == nil {
		t.Fatal("invalid service accepted")
	}

	sess, err := sys.NewSession(SessionConfig{Preempt: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dec, _, err := sess.AdmitService(ctx, "video-1", 0, 8, voip.Video(), admit.ClassRtPS)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("video call rejected on an empty mesh: %+v", dec)
	}
	// Saturate the mesh with best-effort bulk flows until one is rejected,
	// then check a voice arrival preempts its way in.
	for i := 0; ; i++ {
		id := admit.FlowID(fmt.Sprintf("bulk-%d", i))
		dec, _, err := sess.AdmitService(ctx, id, 0, 8, voip.Bulk(), admit.ClassBE)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			break
		}
		if i > 10_000 {
			t.Fatal("mesh never saturated")
		}
	}
	dec, _, err = sess.AdmitCall(ctx, "voice-1", 0, 8, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("voice call not admitted by preemption: %+v", dec)
	}
	if len(dec.Preempted) == 0 {
		t.Fatalf("voice call admitted without evictions on a saturated mesh: %+v", dec)
	}
	st := sess.Stats()
	if st.PreemptAdmits == 0 || st.PreemptEvicted == 0 {
		t.Fatalf("preempt stats: %+v", st)
	}
}
