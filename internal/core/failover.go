package core

import (
	"errors"
	"fmt"
	"time"

	"wimesh/internal/mac/tdmaemu"
	"wimesh/internal/sim"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// FailoverConfig describes a link-failure scenario: the link dies at FailAt;
// after DetectDelay the management plane reroutes the affected flows around
// it, replans, and hot-swaps the schedule.
type FailoverConfig struct {
	// FailedLink is the link that dies.
	FailedLink topology.LinkID
	// FailAt is the failure instant (default Duration/3).
	FailAt time.Duration
	// DetectDelay is the failure-detection plus replanning latency
	// (default 10 frames).
	DetectDelay time.Duration
	// Method plans the replacement schedule (default MethodPathMajor).
	Method PlanMethod
}

// WindowLoss is the per-flow loss fraction within one phase of the
// scenario.
type WindowLoss struct {
	Sent, Received int
	Loss           float64
}

// FailoverFlowResult is one flow's delivery across the three phases.
// Packets still in flight at a phase boundary (or at the end of the run)
// count against the phase that created them, so a fraction of a percent of
// boundary loss is expected even on healthy flows.
type FailoverFlowResult struct {
	FlowID topology.FlowID
	// Rerouted reports that the flow's path crossed the failed link.
	Rerouted bool
	// Before covers packets created before the failure; During covers the
	// outage (failure to schedule swap); After covers post-recovery.
	Before, During, After WindowLoss
}

// FailoverResult is the outcome of a failover scenario.
type FailoverResult struct {
	Flows []FailoverFlowResult
	// SwapAt is when the replacement schedule took over.
	SwapAt time.Duration
	// ReroutedFlows counts flows moved to new paths.
	ReroutedFlows int
	// MAC carries the emulation counters (FailureDrops included).
	MAC tdmaemu.Stats
}

// RunTDMAFailover runs the flow set over the TDMA emulation, kills
// cfg.FailedLink mid-run, reroutes and replans after the detection delay,
// and reports per-phase delivery. Flows with no alternative path keep
// failing — that shows up as After-phase loss.
func (s *System) RunTDMAFailover(plan *Plan, fs *topology.FlowSet, run RunConfig, cfg FailoverConfig) (*FailoverResult, error) {
	if plan == nil || plan.Schedule == nil {
		return nil, errors.New("core: nil plan")
	}
	if fs == nil || len(fs.Flows) == 0 {
		return nil, errors.New("core: no flows")
	}
	if _, err := s.Topo.Link(cfg.FailedLink); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	run.applyDefaults()
	if cfg.FailAt == 0 {
		cfg.FailAt = run.Duration / 3
	}
	if cfg.DetectDelay == 0 {
		cfg.DetectDelay = 10 * s.Frame.FrameDuration
	}
	if cfg.Method == 0 {
		cfg.Method = MethodPathMajor
	}
	if cfg.FailAt <= 0 || cfg.FailAt+cfg.DetectDelay >= run.Duration {
		return nil, fmt.Errorf("core: failover timeline [%v, +%v] outside run of %v",
			cfg.FailAt, cfg.DetectDelay, run.Duration)
	}
	swapAt := cfg.FailAt + cfg.DetectDelay

	kernel := sim.NewKernel()
	type probe struct {
		sent, recv [3]int
	}
	probes := make(map[topology.FlowID]*probe, len(fs.Flows))
	// paths is mutable: the inject closure reads it so rerouting takes
	// effect for packets created after the swap.
	paths := make(map[topology.FlowID]topology.Path, len(fs.Flows))
	for _, f := range fs.Flows {
		probes[f.ID] = &probe{}
		paths[f.ID] = f.Path
	}
	phaseOf := func(created time.Duration) int {
		switch {
		case created < cfg.FailAt:
			return 0
		case created < swapAt:
			return 1
		default:
			return 2
		}
	}

	nw, err := tdmaemu.New(s.MAC, s.Topo, kernel, plan.Schedule, nil, s.InterferenceRange,
		func(p *tdmaemu.Packet, at time.Duration) {
			probes[topology.FlowID(p.FlowID)].recv[phaseOf(p.Created)]++
		})
	if err != nil {
		return nil, err
	}
	if err := nw.Start(); err != nil {
		return nil, err
	}

	sources, err := startSources(kernel, fs, run, func(f topology.Flow, pkt voip.Packet) {
		probes[f.ID].sent[phaseOf(pkt.Sent)]++
		p := &tdmaemu.Packet{FlowID: int(f.ID), Seq: pkt.Seq, Path: paths[f.ID], Bytes: pkt.Bytes}
		_ = nw.Inject(p)
	})
	if err != nil {
		return nil, err
	}

	// Failure event.
	if _, err := kernel.At(cfg.FailAt, func() {
		_ = nw.FailLink(cfg.FailedLink)
	}); err != nil {
		return nil, err
	}

	// Detection + replan + swap event.
	res := &FailoverResult{SwapAt: swapAt}
	rerouted := make(map[topology.FlowID]bool)
	if _, err := kernel.At(swapAt, func() {
		avoid := map[topology.LinkID]bool{cfg.FailedLink: true}
		newFS := topology.NewFlowSet(s.Topo)
		for _, f := range fs.Flows {
			path := f.Path
			if pathUses(path, cfg.FailedLink) {
				alt, err := s.Topo.ShortestPathAvoiding(f.Src, f.Dst, avoid)
				if err == nil {
					path = alt
					rerouted[f.ID] = true
				}
			}
			// Flow IDs are assigned in order, so the new set keeps them.
			if _, err := newFS.AddOnPath(f.Src, f.Dst, f.RateBps, f.DelayBound, path); err != nil {
				return
			}
		}
		newPlan, err := s.Plan(newFS, cfg.Method, run.Codec.PacketBytes())
		if err != nil {
			return // no feasible replacement: keep limping on the old one
		}
		for _, f := range newFS.Flows {
			paths[f.ID] = f.Path
		}
		_ = nw.SetSchedule(newPlan.Schedule)
	}); err != nil {
		return nil, err
	}

	kernel.RunUntil(run.Duration)
	for _, src := range sources {
		src.Stop()
	}

	for _, f := range fs.Flows {
		pr := probes[f.ID]
		fr := FailoverFlowResult{FlowID: f.ID, Rerouted: rerouted[f.ID]}
		for phase, dst := range []*WindowLoss{&fr.Before, &fr.During, &fr.After} {
			dst.Sent = pr.sent[phase]
			dst.Received = pr.recv[phase]
			if dst.Sent > 0 {
				dst.Loss = 1 - float64(dst.Received)/float64(dst.Sent)
				if dst.Loss < 0 {
					dst.Loss = 0
				}
			}
		}
		res.Flows = append(res.Flows, fr)
	}
	res.ReroutedFlows = len(rerouted)
	res.MAC = nw.Stats()
	return res, nil
}

func pathUses(p topology.Path, l topology.LinkID) bool {
	for _, x := range p {
		if x == l {
			return true
		}
	}
	return false
}
