package core

import (
	"math"
	"sort"
	"time"

	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// qualityMonitor watches a run's per-flow measurements and decides when the
// run can be aborted early because some flow provably cannot recover toll
// quality. Every abort test is conservative: it scores the flow against the
// best possible continuation of the run, so an abort can only fire on runs
// whose final verdict would have been a quality failure anyway. Skipping a
// check is always sound too — the monitor is an accelerator, never an
// oracle.
//
// Two independent proofs are checked:
//
// Delay bound: with the source emitting at most one measured packet per
// PacketInterval, the flow's final delivered-sample count is at most
// S_max = sent_now + remaining-interval count. The playout planner sizes the
// jitter buffer at the ceil((1-target)·n)-th smallest delay; even if every
// outstanding packet (Z = S_max - received_now of them) lands with zero
// delay, that order statistic is at least the (keep-Z)-th smallest delay
// observed so far. If the E-model rating at that buffer depth — with zero
// loss — is already below toll quality, no continuation can pass.
//
// Loss bound: let D be the smallest jitter-buffer depth that already breaks
// toll quality on its own (badDelay). A measured packet is provably bad if
// it was delivered with delay > D, or has been outstanding for longer than
// D — if the latter ever arrives its delay exceeds D, otherwise it is a
// network loss. In any continuation, either the final buffer is >= D (delay
// impairment alone fails) or every bad packet counts toward the final
// lost-or-late fraction, which is at least bad/S_max. If the E-model rating
// at the minimal mouth-to-ear delay with that loss fraction is below toll
// quality, no continuation can pass. This catches flows whose delays look
// healthy but whose deliveries are collapsing.
type qualityMonitor struct {
	codec  voip.Codec
	lo, hi time.Duration // measurement window over packet send times
	flows  []topology.Flow
	cs     *collectorSet
	// screenLimit is the largest jitter-buffer depth (in seconds) still
	// compatible with toll quality at zero loss. Flows whose running P²
	// 99th-percentile delay estimate sits clearly below it skip the exact
	// (sorting) delay check.
	screenLimit float64
	// minDelayImpairment is Id at the minimal possible mouth-to-ear delay
	// (zero network delay and buffer), used by the loss bound.
	minDelayImpairment float64
	// heuristic additionally aborts on a face-value failure estimate (the
	// current loss and 99th-percentile delay taken as final) without a
	// proof. Only pilot probes set it: their outcomes are advisory.
	heuristic bool
}

func newQualityMonitor(codec voip.Codec, lo, hi time.Duration, flows []topology.Flow, cs *collectorSet, heuristic bool) *qualityMonitor {
	limit := bufferLimit(codec)
	if limit < 0 {
		limit = 0
	}
	// The loss bound's case split needs a provably failing depth, one
	// bisection tolerance above the largest passing one.
	cs.badDelay = limit + time.Microsecond
	return &qualityMonitor{
		codec:              codec,
		lo:                 lo,
		hi:                 hi,
		flows:              flows,
		cs:                 cs,
		screenLimit:        limit.Seconds(),
		minDelayImpairment: voip.DelayImpairment(voip.EndToEndDelay(codec, 0, 0)),
		heuristic:          heuristic,
	}
}

// bufferLimit returns the largest jitter-buffer depth whose zero-loss
// E-model rating still meets toll quality (negative when even zero delay
// fails), found by bisection so it can never drift from the DelayImpairment
// formula it inverts.
func bufferLimit(codec voip.Codec) time.Duration {
	budget := voip.R0 - voip.TollQualityR - voip.EffectiveEquipmentImpairment(codec, 0)
	passes := func(d time.Duration) bool {
		return voip.DelayImpairment(voip.EndToEndDelay(codec, d, 0)) <= budget
	}
	if !passes(0) {
		return -1
	}
	lo, hi := time.Duration(0), 10*time.Second
	for hi-lo > time.Microsecond {
		mid := lo + (hi-lo)/2
		if passes(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// maxFutureSends bounds the flow's final measured send count: the source
// emits at most one packet per interval in both CBR and talk-spurt modes.
func (m *qualityMonitor) maxFutureSends(now time.Duration) int {
	if now >= m.hi {
		return 0
	}
	return int((m.hi-now)/m.codec.PacketInterval) + 1
}

// shouldAbort reports whether, at simulation time now, some flow provably
// cannot reach toll quality by the end of the run.
func (m *qualityMonitor) shouldAbort(now time.Duration) bool {
	if now <= m.lo {
		return false
	}
	future := m.maxFutureSends(now)
	for i := range m.flows {
		f := &m.flows[i]
		c := &m.cs.cols[int(f.ID)]
		if c.sent == 0 {
			continue
		}
		sMax := c.sent + future
		// Loss bound (O(1) amortized): provably bad packets vs. the best
		// possible final packet count.
		bad := c.badDelivered + c.agedUndelivered(now-m.cs.badDelay)
		if bad > 0 {
			badFrac := float64(bad) / float64(sMax)
			r := voip.R0 - m.minDelayImpairment - voip.EffectiveEquipmentImpairment(m.codec, badFrac)
			if r < voip.TollQualityR {
				return true
			}
		}
		// Face-value estimate (pilot probes only): score the flow as if the
		// current loss fraction and running 99th-percentile delay were final.
		if m.heuristic && c.received >= 50 && c.screen.Ready() {
			buf := time.Duration(c.screen.Estimate() * float64(time.Second))
			if buf < 0 {
				buf = 0
			}
			loss := float64(bad) / float64(c.sent)
			r := voip.R0 -
				voip.DelayImpairment(voip.EndToEndDelay(m.codec, buf, 0)) -
				voip.EffectiveEquipmentImpairment(m.codec, loss)
			if r < voip.TollQualityR {
				return true
			}
		}
		if c.received == 0 {
			continue
		}
		// P² screen: a running 99th-percentile estimate well under the
		// buffer limit means the exact order statistic cannot be provably
		// failing; skipping the sort is sound because skipping any check is.
		if c.screen.Ready() && c.screen.Estimate() < 0.9*m.screenLimit {
			continue
		}
		outstanding := sMax - c.received
		if outstanding < 0 {
			outstanding = 0
			sMax = c.received
		}
		keep := int(math.Ceil((1 - playoutLateTarget) * float64(sMax)))
		j := keep - 1 - outstanding
		if j < 0 {
			// Outstanding zero-delay arrivals could still push the buffer
			// order statistic below anything observed: no proof possible.
			continue
		}
		if j >= c.received {
			j = c.received - 1
		}
		// Sort a scratch copy: the live sample must keep insertion order so
		// the final Mean sums in exactly the same order as an unmonitored
		// run.
		scratch := append(m.cs.scratch[:0], c.delays.Values()...)
		sort.Float64s(scratch)
		m.cs.scratch = scratch
		bufferLB := time.Duration(scratch[j] * float64(time.Second))
		bestR := voip.R0 -
			voip.DelayImpairment(voip.EndToEndDelay(m.codec, bufferLB, 0)) -
			voip.EffectiveEquipmentImpairment(m.codec, 0)
		if bestR < voip.TollQualityR {
			return true
		}
	}
	return false
}
