package core

import (
	"testing"
	"time"

	"wimesh/internal/tdma"
	"wimesh/internal/timesync"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

func chainSystem(t *testing.T, n int) *System {
	t.Helper()
	topo, err := topology.Chain(n, 100)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(topo)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemDefaults(t *testing.T) {
	sys := chainSystem(t, 4)
	if sys.Graph == nil {
		t.Fatal("no conflict graph")
	}
	if sys.Frame.DataSlots != 16 {
		t.Errorf("default frame slots = %d, want 16", sys.Frame.DataSlots)
	}
	if _, err := NewSystem(nil); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestNewSystemOptions(t *testing.T) {
	topo, err := topology.Chain(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	frame := tdma.FrameConfig{FrameDuration: 40 * time.Millisecond, DataSlots: 32}
	sys, err := NewSystem(topo, WithFrame(frame), WithInterferenceRange(300))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Frame.DataSlots != 32 || sys.InterferenceRange != 300 {
		t.Errorf("options not applied: %+v", sys)
	}
	if _, err := NewSystem(topo, WithFrame(tdma.FrameConfig{})); err == nil {
		t.Error("invalid frame accepted")
	}
}

func TestBytesPerSlot(t *testing.T) {
	sys := chainSystem(t, 3)
	b, err := sys.BytesPerSlot(voip.G711().PacketBytes())
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Errorf("BytesPerSlot = %d, want > 0", b)
	}
}

func TestPlanMethodsOnChain(t *testing.T) {
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 2, voip.G711(), 150*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []PlanMethod{MethodILP, MethodMinMaxDelay, MethodPathMajor, MethodTreeOrder, MethodGreedy, MethodPartitioned} {
		t.Run(m.String(), func(t *testing.T) {
			plan, err := sys.PlanVoIP(fs, m, voip.G711())
			if err != nil {
				t.Fatalf("Plan(%v): %v", m, err)
			}
			if err := plan.Schedule.Validate(sys.Graph); err != nil {
				t.Errorf("schedule invalid: %v", err)
			}
			if plan.WindowSlots <= 0 || plan.WindowSlots > sys.Frame.DataSlots {
				t.Errorf("window = %d", plan.WindowSlots)
			}
			if plan.MaxSchedulingDelay <= 0 {
				t.Errorf("max scheduling delay = %v", plan.MaxSchedulingDelay)
			}
		})
	}
}

func TestPlanValidation(t *testing.T) {
	sys := chainSystem(t, 3)
	if _, err := sys.Plan(nil, MethodGreedy, 200); err == nil {
		t.Error("nil flow set accepted")
	}
	fs := topology.NewFlowSet(sys.Topo)
	if _, err := sys.Plan(fs, MethodGreedy, 200); err == nil {
		t.Error("empty flow set accepted")
	}
	if _, err := fs.Add(1, 0, 64e3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Plan(fs, MethodGreedy, -5); err == nil {
		t.Error("negative packet size accepted")
	}
	if _, err := sys.Plan(fs, PlanMethod(99), 200); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestRunTDMACleanChain(t *testing.T) {
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 2, voip.G711(), 150*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanVoIP(fs, MethodPathMajor, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunTDMA(plan, fs, RunConfig{Duration: 4 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %d", len(res.Flows))
	}
	for _, f := range res.Flows {
		if f.Sent == 0 {
			t.Errorf("flow %d sent nothing", f.FlowID)
		}
		if f.Loss != 0 {
			t.Errorf("flow %d loss = %g, want 0 (conflict-free schedule, ideal clocks)", f.FlowID, f.Loss)
		}
		// Worst-case TDMA delay: about one frame of queueing wait plus the
		// scheduling delay.
		if f.MaxDelay > 3*sys.Frame.FrameDuration {
			t.Errorf("flow %d max delay = %v", f.FlowID, f.MaxDelay)
		}
	}
	if !res.AllAcceptable {
		t.Errorf("clean TDMA run not acceptable: minR=%g", res.MinR)
	}
	if res.TDMA == nil || res.TDMA.Violations != 0 {
		t.Errorf("TDMA stats = %+v", res.TDMA)
	}
}

func TestRunTDMAWithSync(t *testing.T) {
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 1, voip.G711(), 150*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanVoIP(fs, MethodPathMajor, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	syncCfg := timesync.DefaultConfig()
	res, err := sys.RunTDMA(plan, fs, RunConfig{Duration: 3 * time.Second, Seed: 2, Sync: &syncCfg})
	if err != nil {
		t.Fatal(err)
	}
	// 10 us per-hop error against a 100 us guard: still clean.
	if res.TDMA.Violations != 0 {
		t.Errorf("violations = %d with default sync and guard", res.TDMA.Violations)
	}
	if !res.AllAcceptable {
		t.Errorf("run with sync not acceptable: minR=%g", res.MinR)
	}
}

func TestRunDCFChain(t *testing.T) {
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 1, voip.G711(), 150*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunDCF(fs, RunConfig{Duration: 3 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Sent == 0 || f.Received == 0 {
		t.Fatalf("flow did not run: %+v", f)
	}
	if res.DCF == nil || res.DCF.Transmissions == 0 {
		t.Errorf("DCF stats = %+v", res.DCF)
	}
	// One call over a lightly loaded chain is fine under DCF too.
	if !res.AllAcceptable {
		t.Errorf("single DCF call not acceptable: minR=%g, loss=%g, p95=%v",
			res.MinR, f.Loss, f.P95Delay)
	}
}

func TestRunValidation(t *testing.T) {
	sys := chainSystem(t, 3)
	fs, err := GatewayCalls(sys.Topo, 1, voip.G711(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunTDMA(nil, fs, RunConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	plan, err := sys.PlanVoIP(fs, MethodGreedy, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunTDMA(plan, topology.NewFlowSet(sys.Topo), RunConfig{}); err == nil {
		t.Error("empty flow set accepted")
	}
	if _, err := sys.RunDCF(topology.NewFlowSet(sys.Topo), RunConfig{}); err == nil {
		t.Error("empty flow set accepted by RunDCF")
	}
}

func TestGatewayCalls(t *testing.T) {
	sys := chainSystem(t, 4)
	fs, err := GatewayCalls(sys.Topo, 5, voip.G711(), 100*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Flows) != 5 {
		t.Fatalf("flows = %d, want 5", len(fs.Flows))
	}
	for _, f := range fs.Flows {
		if f.Dst != 0 {
			t.Errorf("flow %d dst = %d, want gateway 0", f.ID, f.Dst)
		}
		if f.DelayBound != 100*time.Millisecond {
			t.Errorf("flow %d bound = %v", f.ID, f.DelayBound)
		}
	}
	// Downlink doubles the flows.
	fs2, err := GatewayCalls(sys.Topo, 2, voip.G711(), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs2.Flows) != 4 {
		t.Errorf("duplex flows = %d, want 4", len(fs2.Flows))
	}
	// No gateway: error.
	bare := topology.NewNetwork()
	bare.AddNode(0, 0)
	if _, err := GatewayCalls(bare, 1, voip.G711(), 0, false); err == nil {
		t.Error("no-gateway topology accepted")
	}
}

func TestVoIPCapacityTDMASmallChain(t *testing.T) {
	sys := chainSystem(t, 3)
	res, err := sys.VoIPCapacityTDMA(CapacityConfig{
		MaxCalls: 4,
		Run:      RunConfig{Duration: 2 * time.Second, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls < 1 {
		t.Errorf("capacity = %d, want >= 1 (stopped by %s)", res.Calls, res.StoppedBy)
	}
	if res.Calls >= 1 && res.LastGood == nil {
		t.Error("no LastGood run recorded")
	}
}

func TestVoIPCapacityDCFSmallChain(t *testing.T) {
	sys := chainSystem(t, 3)
	res, err := sys.VoIPCapacityDCF(CapacityConfig{
		MaxCalls: 2,
		Run:      RunConfig{Duration: 2 * time.Second, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls < 1 {
		t.Errorf("DCF capacity = %d, want >= 1", res.Calls)
	}
}

func TestMeasurementWindow(t *testing.T) {
	cfg := RunConfig{Duration: 10 * time.Second, WarmUp: time.Second}
	lo, hi := measurementWindow(cfg, 20*time.Millisecond)
	if lo != time.Second {
		t.Errorf("lo = %v", lo)
	}
	if hi >= cfg.Duration || hi <= lo {
		t.Errorf("hi = %v", hi)
	}
	// Degenerate short run: falls back to the whole run.
	short := RunConfig{Duration: 300 * time.Millisecond, WarmUp: 200 * time.Millisecond}
	lo, hi = measurementWindow(short, 20*time.Millisecond)
	if hi != short.Duration || lo >= hi {
		t.Errorf("short window = [%v, %v)", lo, hi)
	}
}

func TestPlanHonorsPerLinkRates(t *testing.T) {
	// Two identical chains except one has a slow middle link: the slow
	// chain needs more slots for the same call.
	build := func(slow bool) int {
		topo, err := topology.Chain(4, 100)
		if err != nil {
			t.Fatal(err)
		}
		if slow {
			l, err := topo.FindLink(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			// 5.5 Mb/s halves the packets per slot on the middle link.
			if err := topo.SetLinkRate(l, 5.5e6); err != nil {
				t.Fatal(err)
			}
		}
		sys, err := NewSystem(topo)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := GatewayCalls(topo, 1, voip.G711(), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		// Only the farthest caller crosses the middle link; round-robin
		// caller 1 is node 1 (1 hop). Use 3 calls so node 3's call exists.
		fs, err = GatewayCalls(topo, 3, voip.G711(), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sys.PlanVoIP(fs, MethodGreedy, voip.G711())
		if err != nil {
			t.Fatal(err)
		}
		return plan.WindowSlots
	}
	fast := build(false)
	slowW := build(true)
	if slowW <= fast {
		t.Errorf("slow-link plan %d slots not above fast plan %d", slowW, fast)
	}
}

func TestRunTDMAWithMixedRates(t *testing.T) {
	topo, err := topology.Chain(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := topo.FindLink(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.SetLinkRate(l, 2e6); err != nil {
		t.Fatal(err)
	}
	// Slow links need longer slots: 8 slots of 2.5 ms.
	sys, err := NewSystem(topo, WithFrame(tdma.FrameConfig{
		FrameDuration: 20 * time.Millisecond, DataSlots: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := GatewayCalls(topo, 3, voip.G711(), 150*time.Millisecond, false)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanVoIP(fs, MethodPathMajor, voip.G711())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunTDMA(plan, fs, RunConfig{Duration: 3 * time.Second, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.Loss != 0 {
			t.Errorf("flow %d loss = %g over mixed-rate chain", f.FlowID, f.Loss)
		}
	}
	if !res.AllAcceptable {
		t.Errorf("mixed-rate run not acceptable: minR=%g", res.MinR)
	}
}
