package core

import (
	"testing"
	"time"

	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

func twoFlowSet() *topology.FlowSet {
	return &topology.FlowSet{Flows: []topology.Flow{{ID: 0}, {ID: 1}}}
}

// TestObserveDeliveryAllocFree pins the zero-alloc claim for the per-packet
// delivery path: once a collector set's buffers have grown to the working
// set, recording a delivery allocates nothing (monitored or not).
func TestObserveDeliveryAllocFree(t *testing.T) {
	for _, monitored := range []bool{false, true} {
		cs := new(collectorSet) // bypass the pool: GC may empty it mid-test
		cs.reset(2, monitored)
		// Warm the delay buffers past the per-run sample count.
		for i := 0; i < 256; i++ {
			cs.observeSend(i%2, i/2, time.Duration(i)*time.Microsecond)
			cs.observeDelivery(i%2, i/2, time.Duration(i)*time.Microsecond)
		}
		allocs := testing.AllocsPerRun(50, func() {
			cs.reset(2, monitored)
			for i := 0; i < 128; i++ {
				cs.observeSend(i%2, i/2, time.Duration(i)*time.Microsecond)
				cs.observeDelivery(i%2, i/2, time.Duration(i)*time.Microsecond)
			}
		})
		if allocs != 0 {
			t.Errorf("monitored=%v: %.1f allocs per 128-packet run, want 0", monitored, allocs)
		}
	}
}

// TestMonitorCheckAllocFree pins the monitor's steady state: an abort check
// over warm collectors reuses the scratch sort buffer.
func TestMonitorCheckAllocFree(t *testing.T) {
	fs := twoFlowSet()
	cs := new(collectorSet)
	cs.reset(2, true)
	mon := newQualityMonitor(voip.G711(), 100*time.Millisecond, 900*time.Millisecond, fs.Flows, cs, false)
	for i := 0; i < 256; i++ {
		cs.observeSend(i%2, i/2, time.Duration(i)*time.Microsecond)
		// Delays near the toll-quality edge — above the P² screen threshold
		// so the exact (sorting) check runs, but below badDelay so the O(1)
		// loss bound does not short-circuit it.
		cs.observeDelivery(i%2, i/2, 280*time.Millisecond+time.Duration(i)*time.Microsecond)
	}
	mon.shouldAbort(500 * time.Millisecond) // warm the scratch buffer
	allocs := testing.AllocsPerRun(50, func() {
		mon.shouldAbort(500 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("%.1f allocs per monitor check, want 0", allocs)
	}
}

// TestMonitorAbortsHopelessFlow drives the monitor directly: every observed
// delay is far beyond any delay budget, so the bound must fire once enough
// of the flow's maximum future sends are already hopeless.
func TestMonitorAbortsHopelessFlow(t *testing.T) {
	fs := twoFlowSet()
	cs := new(collectorSet)
	cs.reset(2, true)
	mon := newQualityMonitor(voip.G711(), 100*time.Millisecond, 900*time.Millisecond, fs.Flows, cs, false)
	if mon.shouldAbort(50 * time.Millisecond) {
		t.Fatal("aborted before the measurement window opened")
	}
	for i := 0; i < 400; i++ {
		cs.observeSend(i%2, i/2, 100*time.Millisecond+time.Duration(i)*time.Millisecond)
		cs.observeDelivery(i%2, i/2, 2*time.Second)
	}
	if !mon.shouldAbort(890 * time.Millisecond) {
		t.Error("monitor did not abort a provably failing flow")
	}
	// One bad sample with a long window still ahead: the hundreds of
	// outstanding packets could all arrive instantly and absorb the bad one
	// within the 1% late budget, so no proof is possible yet.
	cs2 := new(collectorSet)
	cs2.reset(2, true)
	mon2 := newQualityMonitor(voip.G711(), 100*time.Millisecond, 10*time.Second, fs.Flows, cs2, false)
	cs2.observeSend(0, 0, 110*time.Millisecond)
	cs2.observeDelivery(0, 0, 2*time.Second)
	if mon2.shouldAbort(120 * time.Millisecond) {
		t.Error("monitor aborted with nearly all sends outstanding")
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	cs := new(collectorSet)
	cs.reset(2, true)
	for i := 0; i < 4096; i++ {
		cs.observeSend(i%2, i/2, time.Duration(i)*time.Microsecond)
		cs.observeDelivery(i%2, i/2, time.Duration(i)*time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	seq := 0
	for i := 0; i < b.N; i++ {
		if i&4095 == 0 {
			cs.reset(2, true)
			seq = 0
		}
		cs.observeSend(i%2, seq/2, time.Duration(i&1023)*time.Microsecond)
		cs.observeDelivery(i%2, seq/2, time.Duration(i&1023)*time.Microsecond)
		seq++
	}
}
