package core

import (
	"sync"
	"time"

	"wimesh/internal/stats"
	"wimesh/internal/topology"
)

// playoutLateTarget is the late-loss budget the receiver-side playout plan
// sizes its jitter buffer for (assemble and the quality monitor must agree
// on it: the monitor's provable buffer bound is the matching order
// statistic).
const playoutLateTarget = 0.01

// flowCollector accumulates one flow's measured packets.
type flowCollector struct {
	sent     int
	received int
	delays   stats.Sample
	// screen tracks a running high-quantile delay estimate (P², fixed
	// memory) so the quality monitor can skip exact checks on healthy
	// flows; it is fed only when the run is monitored.
	screen stats.P2Quantile

	// The remaining fields exist only on monitored runs and feed the
	// monitor's loss bound: a measured packet outstanding for longer than
	// badDelay is provably bad — it is either lost or will arrive late.
	// sentAt records the send time per measured packet (seq-indexed from
	// baseSeq; sources emit strictly increasing seqs), delivered marks
	// arrivals, badDelivered counts arrivals with delay > badDelay, and
	// agedPtr/agedDelivered maintain the aged-prefix scan incrementally.
	baseSeq       int
	sentAt        []time.Duration
	delivered     []bool
	badDelivered  int
	agedPtr       int
	agedDelivered int
}

// collectorSet is one run's measurement state: dense per-flow collectors
// indexed by FlowID plus scratch buffers. Sets are pooled and reused across
// the probe runs of a capacity search, so the per-packet delivery path is
// allocation-free once the slices have grown to the working-set size (see
// BenchmarkCollectorObserve).
type collectorSet struct {
	cols      []flowCollector
	monitored bool
	// badDelay is the monitor's provable-badness threshold (the largest
	// jitter buffer still compatible with toll quality); zero on
	// unmonitored runs.
	badDelay time.Duration
	// durs is the scratch buffer assemble converts sorted delays into for
	// the playout evaluation.
	durs []time.Duration
	// scratch is the monitor's private sort buffer: exact abort checks sort
	// a copy so the live sample keeps its insertion order (and therefore
	// its exact float summation order) untouched mid-run.
	scratch []float64
}

var collectorPool = sync.Pool{New: func() any { return new(collectorSet) }}

// acquireCollectors returns a pooled collector set covering every FlowID in
// fs, fully reset.
func acquireCollectors(fs *topology.FlowSet, monitored bool) *collectorSet {
	maxID := 0
	for _, f := range fs.Flows {
		if int(f.ID) > maxID {
			maxID = int(f.ID)
		}
	}
	cs := collectorPool.Get().(*collectorSet)
	cs.reset(maxID+1, monitored)
	return cs
}

func (cs *collectorSet) reset(n int, monitored bool) {
	if cap(cs.cols) < n {
		grown := make([]flowCollector, n)
		copy(grown, cs.cols) // keep the already-grown delay buffers
		cs.cols = grown
	}
	cs.cols = cs.cols[:n]
	cs.monitored = monitored
	cs.badDelay = 0
	for i := range cs.cols {
		c := &cs.cols[i]
		c.sent, c.received = 0, 0
		c.delays.Reset()
		c.baseSeq = -1
		c.sentAt = c.sentAt[:0]
		c.delivered = c.delivered[:0]
		c.badDelivered, c.agedPtr, c.agedDelivered = 0, 0, 0
		if monitored {
			// 0.99 < 1 always: Reset cannot fail.
			_ = c.screen.Reset(1 - playoutLateTarget)
		}
	}
}

func (cs *collectorSet) release() { collectorPool.Put(cs) }

// observeSend records one measured packet handed to the network. This and
// observeDelivery are the per-packet hot path: no allocation once the
// per-flow buffers are warm.
func (cs *collectorSet) observeSend(flowID, seq int, at time.Duration) {
	c := &cs.cols[flowID]
	c.sent++
	if cs.monitored {
		if c.baseSeq < 0 {
			c.baseSeq = seq
		}
		c.sentAt = append(c.sentAt, at)
		c.delivered = append(c.delivered, false)
	}
}

// observeDelivery records one delivered measured packet.
func (cs *collectorSet) observeDelivery(flowID, seq int, delay time.Duration) {
	c := &cs.cols[flowID]
	c.received++
	sec := delay.Seconds()
	c.delays.Add(sec)
	if !cs.monitored {
		return
	}
	c.screen.Add(sec)
	if delay > cs.badDelay {
		c.badDelivered++
	}
	if idx := seq - c.baseSeq; idx >= 0 && idx < len(c.delivered) {
		c.delivered[idx] = true
		if idx < c.agedPtr {
			c.agedDelivered++
		}
	}
}

// agedUndelivered advances the aged-prefix pointer to cutoff and returns how
// many measured packets sent at or before it are still undelivered. Each is
// provably bad: if it ever arrives its delay exceeds now-cutoff, otherwise
// it is a loss. Amortized O(1) per packet across a run's checks.
func (c *flowCollector) agedUndelivered(cutoff time.Duration) int {
	for c.agedPtr < len(c.sentAt) && c.sentAt[c.agedPtr] <= cutoff {
		if c.delivered[c.agedPtr] {
			c.agedDelivered++
		}
		c.agedPtr++
	}
	return c.agedPtr - c.agedDelivered
}
