package core

import (
	"time"

	"wimesh/internal/analytic"
	"wimesh/internal/topology"
)

// ScreenMode selects the screening predictor the galloping capacity search
// uses to bracket the capacity before full-length verification. Whatever the
// screen predicts, the result is built exclusively from full-length probe
// outcomes (see screenedSearch), so the mode changes wall-clock only.
type ScreenMode int

const (
	// ScreenAuto (the default) screens with the closed-form analytic
	// model (internal/analytic): no packet is simulated until the
	// predicted bracket edge is verified.
	ScreenAuto ScreenMode = iota
	// ScreenAnalytic forces the analytic screen (same as ScreenAuto
	// today; the explicit value pins the choice against future defaults).
	ScreenAnalytic
	// ScreenPilot screens with short-duration pilot simulations (the
	// pre-analytic behavior). Runs too short for a useful pilot fall back
	// to ScreenNone.
	ScreenPilot
	// ScreenNone disables screening: the gallop probes full-length runs
	// directly.
	ScreenNone
)

// effectiveQueueCap resolves the finite per-link queue depth a run uses: the
// run override when set, else the MAC default.
func (s *System) effectiveQueueCap(rc RunConfig) int {
	if rc.QueueCap > 0 {
		return rc.QueueCap
	}
	return s.MAC.Defaulted().QueueCap
}

// analyticTDMAConfig assembles the closed-form model parameters matching
// what RunTDMA would simulate under rc: same frame, guard, SIFS, per-link
// airtimes (adaptive rates included), queue depth and playout target.
func (s *System) analyticTDMAConfig(rc RunConfig) (analytic.TDMAConfig, error) {
	rc.applyDefaults()
	mac := s.MAC.Defaulted()
	airs := make([]time.Duration, s.Topo.NumLinks())
	pkt := rc.Codec.PacketBytes()
	for _, lk := range s.Topo.Links() {
		rate := mac.DataRateBps
		if lk.RateBps > 0 && mac.PHY.SupportsRate(lk.RateBps) {
			rate = lk.RateBps
		}
		at, err := mac.PHY.DataFrameTime(pkt, rate)
		if err != nil {
			return analytic.TDMAConfig{}, err
		}
		airs[lk.ID] = at
	}
	return analytic.TDMAConfig{
		Frame:       s.Frame,
		Guard:       mac.Guard,
		SIFS:        mac.PHY.SIFS,
		LinkAirtime: airs,
		QueueCap:    s.effectiveQueueCap(rc),
		Codec:       rc.Codec,
		LateTarget:  playoutLateTarget,
	}, nil
}

// analyticDCFConfig assembles the DCF screen parameters matching RunDCF.
func (s *System) analyticDCFConfig(rc RunConfig) analytic.DCFConfig {
	rc.applyDefaults()
	mac := s.MAC.Defaulted()
	return analytic.DCFConfig{
		PHY:               mac.PHY,
		DataRateBps:       mac.DataRateBps,
		Codec:             rc.Codec,
		InterferenceRange: s.InterferenceRange,
		RetryLimit:        0, // dcf.Config default (7)
		QueueCap:          s.effectiveQueueCap(rc),
		LateTarget:        playoutLateTarget,
	}
}

// AnalyticTDMA evaluates the closed-form TDMA model (internal/analytic) for
// the planned flow set under the run's codec and queue depth — the same
// prediction the ScreenAuto capacity search brackets with. The returned
// Prediction's Flows slice is freshly allocated per call.
func (s *System) AnalyticTDMA(plan *Plan, fs *topology.FlowSet, rc RunConfig) (analytic.Prediction, error) {
	cfg, err := s.analyticTDMAConfig(rc)
	if err != nil {
		return analytic.Prediction{}, err
	}
	pred, err := analytic.NewPredictor().PredictTDMA(plan.Schedule, fs.Flows, cfg)
	if err != nil {
		return analytic.Prediction{}, err
	}
	pred.Flows = append([]analytic.FlowPrediction(nil), pred.Flows...)
	return pred, nil
}

// AnalyticDCF evaluates the DCF saturation screen for the flow set.
func (s *System) AnalyticDCF(fs *topology.FlowSet, rc RunConfig) (analytic.Prediction, error) {
	pred, err := analytic.NewPredictor().PredictDCF(s.Graph, fs.Flows, s.analyticDCFConfig(rc))
	if err != nil {
		return analytic.Prediction{}, err
	}
	pred.Flows = append([]analytic.FlowPrediction(nil), pred.Flows...)
	return pred, nil
}

// analyticProber builds the screening prober of the capacity search: probes
// plan (TDMA) and evaluate the closed-form model instead of simulating. The
// prober is strictly sequential — the predictor reuses scratch across calls,
// and closed-form probes are far too cheap to speculate on.
func (s *System) analyticProber(cfg CapacityConfig, tdma bool,
	prepare func(int) (*topology.FlowSet, error)) (*prober, error) {
	pd := analytic.NewPredictor()
	var probe func(int, *topology.FlowSet) (probeOutcome, error)
	if tdma {
		acfg, err := s.analyticTDMAConfig(cfg.Run)
		if err != nil {
			return nil, err
		}
		probe = func(k int, fs *topology.FlowSet) (probeOutcome, error) {
			plan, planErr := s.PlanVoIP(fs, cfg.Method, cfg.Run.Codec)
			if planErr != nil {
				return probeOutcome{stop: StopSchedule}, nil
			}
			pred, predErr := pd.PredictTDMA(plan.Schedule, fs.Flows, acfg)
			if predErr != nil {
				return probeOutcome{}, predErr
			}
			return analyticOutcome(pred), nil
		}
	} else {
		acfg := s.analyticDCFConfig(cfg.Run)
		probe = func(k int, fs *topology.FlowSet) (probeOutcome, error) {
			pred, predErr := pd.PredictDCF(s.Graph, fs.Flows, acfg)
			if predErr != nil {
				return probeOutcome{}, predErr
			}
			return analyticOutcome(pred), nil
		}
	}
	return newProber(probe, prepare, 1), nil
}

// analyticOutcome converts a closed-form prediction into a probe verdict
// with a synthetic run result, so the screen's bracket guess carries per-flow
// predictions the residual histogram can compare against the verifying
// simulation. The flows are copied out of the predictor's reused scratch.
func analyticOutcome(pred analytic.Prediction) probeOutcome {
	if !pred.AllAcceptable {
		return probeOutcome{stop: StopQuality}
	}
	run := &RunResult{MinR: pred.MinR, AllAcceptable: true,
		Flows: make([]FlowResult, len(pred.Flows))}
	for i, fp := range pred.Flows {
		run.Flows[i] = FlowResult{
			FlowID:       fp.FlowID,
			Loss:         fp.Loss,
			MeanDelay:    fp.MeanDelay,
			P95Delay:     fp.P95Delay,
			MaxDelay:     fp.MaxDelay,
			JitterBuffer: fp.JitterBuffer,
			LateLoss:     fp.LateLoss,
			MouthToEar:   fp.MouthToEar,
			Quality:      fp.Quality,
		}
	}
	return probeOutcome{pass: true, run: run}
}

// worstP95 returns the largest per-flow P95 delay of a run (screen residual
// instrumentation).
func worstP95(run *RunResult) time.Duration {
	var w time.Duration
	for i := range run.Flows {
		if d := run.Flows[i].P95Delay; d > w {
			w = d
		}
	}
	return w
}
