// Package core is the public facade of the wimesh library: it wires the
// mesh topology, conflict graph, TDMA frame, QoS planner (ILP and heuristic
// schedulers) and the two MACs (TDMA-over-WiFi emulation and the 802.11 DCF
// baseline) into a small API:
//
//	sys, _ := core.NewSystem(topo)
//	fs := topology.NewFlowSet(topo)           // add VoIP flows
//	plan, _ := sys.Plan(fs, core.MethodILP)   // conflict-free schedule
//	res, _ := sys.RunTDMA(plan, fs, core.RunConfig{Duration: 10 * time.Second})
//
// Examples under examples/ and the benchmark harness (cmd/meshbench,
// bench_test.go) are thin wrappers over this package.
package core

import (
	"errors"
	"fmt"

	"wimesh/internal/conflict"
	"wimesh/internal/mac/tdmaemu"
	"wimesh/internal/tdma"
	"wimesh/internal/topology"
)

// Option customizes NewSystem.
type Option interface {
	apply(*System)
}

type optionFunc func(*System)

func (f optionFunc) apply(s *System) { f(s) }

// WithFrame overrides the TDMA frame layout (default
// tdma.DefaultEmulationFrame).
func WithFrame(f tdma.FrameConfig) Option {
	return optionFunc(func(s *System) { s.Frame = f })
}

// WithMAC overrides the emulation MAC parameters (PHY, rate, guard).
func WithMAC(c tdmaemu.Config) Option {
	return optionFunc(func(s *System) { s.MAC = c })
}

// WithInterferenceRange overrides the interference/carrier-sense radius in
// meters (default 250, i.e. 2.5x the generators' 100 m link spacing).
func WithInterferenceRange(r float64) Option {
	return optionFunc(func(s *System) { s.InterferenceRange = r })
}

// WithConflictModel overrides the interference model used for the conflict
// graph. The default is conflict.ModelGeometric with the system's
// InterferenceRange, which matches exactly the collision rule the simulated
// medium applies — a schedule that is conflict-free under any weaker model
// (e.g. ModelTwoHop on a dense topology) can still collide on the air.
func WithConflictModel(m conflict.Model) Option {
	return optionFunc(func(s *System) { s.conflictModel = m })
}

// WithZoneSize overrides the spatial zone edge used by
// MethodPartitioned, in meters (default 0 = automatic, three times the
// longest active link; see internal/partition).
func WithZoneSize(meters float64) Option {
	return optionFunc(func(s *System) { s.ZoneSize = meters })
}

// System bundles one mesh deployment: topology, interference, frame layout
// and MAC parameters.
type System struct {
	Topo  *topology.Network
	Graph *conflict.Graph
	Frame tdma.FrameConfig
	MAC   tdmaemu.Config
	// InterferenceRange is the radio interference radius in meters.
	InterferenceRange float64
	// ZoneSize is the zone edge for MethodPartitioned (0 = automatic).
	ZoneSize float64

	conflictModel conflict.Model
}

// NewSystem builds a system over the topology with defaults: the emulation
// frame (20 ms, 16 slots), 802.11b at 11 Mb/s with a 100 us guard, and
// geometric interference with a 250 m range (conflict graph and medium use
// the same rule).
func NewSystem(topo *topology.Network, opts ...Option) (*System, error) {
	if topo == nil {
		return nil, errors.New("core: nil topology")
	}
	s := &System{
		Topo:              topo,
		Frame:             tdma.DefaultEmulationFrame(),
		InterferenceRange: 250,
		conflictModel:     conflict.ModelGeometric,
	}
	for _, o := range opts {
		o.apply(s)
	}
	if err := s.Frame.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	g, err := conflict.Build(topo, conflict.Options{
		Model:             s.conflictModel,
		InterferenceRange: s.InterferenceRange,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.Graph = g
	return s, nil
}

// BytesPerSlot returns the IP payload bytes one data slot carries for
// packets of the given size under the system's MAC parameters.
func (s *System) BytesPerSlot(packetBytes int) (int, error) {
	return tdmaemu.BytesPerSlot(s.MAC, s.Frame, packetBytes)
}
