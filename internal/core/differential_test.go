package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"wimesh/internal/tdma"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// capCase is one capacity-search scenario from the experiment suite: every
// R3 topology x MAC combination and every R17 frame duration.
type capCase struct {
	name  string
	build func() (*topology.Network, error)
	frame *tdma.FrameConfig
	tdma  bool
	seed  int64
}

// differentialCases mirrors the R3 and R17 experiment configurations
// exactly (topologies, frame layouts and seeds), so the equality pinned
// here is the equality of the published experiment tables.
func differentialCases() []capCase {
	r3 := []struct {
		name  string
		build func() (*topology.Network, error)
	}{
		{"chain4", func() (*topology.Network, error) { return topology.Chain(4, 100) }},
		{"chain6", func() (*topology.Network, error) { return topology.Chain(6, 100) }},
		{"grid9", func() (*topology.Network, error) { return topology.Grid(3, 3, 100) }},
		{"random12", func() (*topology.Network, error) { return topology.RandomDisk(12, 600, 250, 5) }},
	}
	var cases []capCase
	for _, tc := range r3 {
		cases = append(cases,
			capCase{name: "R3-" + tc.name + "-tdma", build: tc.build, tdma: true, seed: 11},
			capCase{name: "R3-" + tc.name + "-dcf", build: tc.build, tdma: false, seed: 11},
		)
	}
	for _, fd := range []time.Duration{8 * time.Millisecond, 16 * time.Millisecond,
		32 * time.Millisecond, 64 * time.Millisecond} {
		frame := tdma.FrameConfig{FrameDuration: fd, DataSlots: 16}
		cases = append(cases, capCase{
			name:  fmt.Sprintf("R17-frame%s", fd),
			build: func() (*topology.Network, error) { return topology.Chain(6, 100) },
			frame: &frame,
			tdma:  true,
			seed:  61,
		})
	}
	return cases
}

func (tc capCase) system(t *testing.T) *System {
	t.Helper()
	topo, err := tc.build()
	if err != nil {
		t.Fatal(err)
	}
	var opts []Option
	if tc.frame != nil {
		opts = append(opts, WithFrame(*tc.frame))
	}
	sys, err := NewSystem(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func (tc capCase) search(t *testing.T, strategy SearchStrategy, workers int, duration time.Duration) *CapacityResult {
	t.Helper()
	sys := tc.system(t)
	cfg := CapacityConfig{
		MaxCalls: 40,
		Run:      RunConfig{Duration: duration, Seed: tc.seed},
		Search:   strategy,
		Workers:  workers,
	}
	var res *CapacityResult
	var err error
	if tc.tdma {
		res, err = sys.VoIPCapacityTDMA(cfg)
	} else {
		res, err = sys.VoIPCapacityDCF(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDifferentialCapacitySearch pins the galloping search (with early-abort
// probes, sequential and speculative-parallel) to the preserved linear
// reference scan: byte-identical CapacityResult on every R3 topology x MAC
// combination and every R17 frame duration. Short mode runs the experiments'
// full 3 s probe duration only for a spot-check pair and a faster probe
// duration elsewhere; the -race differential target covers both worker
// settings.
func TestDifferentialCapacitySearch(t *testing.T) {
	for _, tc := range differentialCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			duration := 3 * time.Second
			if testing.Short() {
				duration = 1 * time.Second
			}
			ref := tc.search(t, SearchLinear, 1, duration)
			seq := tc.search(t, SearchGalloping, 1, duration)
			if !reflect.DeepEqual(ref, seq) {
				t.Errorf("galloping (workers=1) diverged from linear scan:\nlinear: calls=%d stop=%s\ngallop: calls=%d stop=%s",
					ref.Calls, ref.StoppedBy, seq.Calls, seq.StoppedBy)
			}
			par := tc.search(t, SearchGalloping, 4, duration)
			if !reflect.DeepEqual(ref, par) {
				t.Errorf("galloping (workers=4) diverged from linear scan:\nlinear: calls=%d stop=%s\ngallop: calls=%d stop=%s",
					ref.Calls, ref.StoppedBy, par.Calls, par.StoppedBy)
			}
		})
	}
}

// TestDifferentialEarlyAbort pins the abort soundness claim directly: on a
// deliberately overloaded network, a monitored run reports the same verdict
// as the full-length run, and a healthy run is never aborted.
func TestDifferentialEarlyAbort(t *testing.T) {
	sys := chainSystem(t, 6)
	for _, calls := range []int{1, 4, 8, 12} {
		calls := calls
		t.Run(fmt.Sprintf("dcf-%dcalls", calls), func(t *testing.T) {
			fs, err := GatewayCalls(sys.Topo, calls, voip.G711(), 150*time.Millisecond, false)
			if err != nil {
				t.Fatal(err)
			}
			full, err := sys.RunDCF(fs, RunConfig{Duration: 2 * time.Second, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := sys.RunDCF(fs, RunConfig{Duration: 2 * time.Second, Seed: 11, AbortOnProvableFailure: true})
			if err != nil {
				t.Fatal(err)
			}
			if fast.AllAcceptable != full.AllAcceptable {
				t.Fatalf("monitored verdict %v != full-run verdict %v (aborted=%v at %s)",
					fast.AllAcceptable, full.AllAcceptable, fast.Aborted, fast.AbortedAt)
			}
			if full.AllAcceptable && fast.Aborted {
				t.Fatalf("monitor aborted a passing run at %s", fast.AbortedAt)
			}
			if !fast.Aborted && !reflect.DeepEqual(full, fast) {
				t.Error("unaborted monitored run differs from unmonitored run")
			}
		})
	}
}
