package core

import (
	"context"
	"fmt"
	"math"

	"wimesh/internal/admit"
	"wimesh/internal/mac/tdmaemu"
	"wimesh/internal/milp"
	"wimesh/internal/obs"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// SessionConfig customizes NewSession. The zero value serves the full frame
// with the planner's default solver limits.
type SessionConfig struct {
	// MaxWindow caps the serving schedule's makespan in slots (0 = the
	// frame's data slots). Calls that cannot fit are rejected.
	MaxWindow int
	// MILP bounds the admission solves; the zero value means
	// DefaultMILPOptions.
	MILP milp.Options
	// BudgetRejects passes through to admit.Config: a solve that exhausts
	// its budget falls back to a single feasibility probe at the window cap
	// and, failing that too, rejects conservatively instead of erroring.
	// Serving deployments want this on; it trades exactness for bounded
	// decision latency.
	BudgetRejects bool
	// Zoned switches the engine to the city-scale per-zone models using the
	// system's ZoneSize.
	Zoned bool
	// Sharded passes through to admit.Config: per-zone locking so
	// admissions in disjoint zones decide concurrently. Requires Zoned.
	Sharded bool
	// CompactEvery and MemoSize pass through to admit.Config.
	CompactEvery int
	MemoSize     int
	// UGSDeadline and RtPSWindow pass through to admit.Config: per-link
	// slot deadlines for the guaranteed service classes (0 = unconstrained;
	// zero deadlines make classes purely informational, so tagged calls
	// decide exactly like untagged ones).
	UGSDeadline int
	RtPSWindow  int
	// Preempt passes through to admit.Config: a guaranteed-class call that
	// would otherwise be rejected may evict best-effort and nrtPS flows.
	Preempt bool
	// Registry receives the engine's admit.* metrics (nil disables them).
	Registry *obs.Registry
}

// Session is the serving-path counterpart of Plan: a long-lived admission
// engine over the system's conflict graph and frame, admitting and releasing
// one call at a time through incremental schedule repair instead of
// re-planning the whole mesh. Decisions agree with a cold Plan over the same
// aggregate demand (see internal/admit).
type Session struct {
	sys *System
	eng *admit.Engine
}

// NewSession starts an empty serving session.
func (s *System) NewSession(cfg SessionConfig) (*Session, error) {
	opts := cfg.MILP
	if opts == (milp.Options{}) {
		opts = DefaultMILPOptions()
	}
	eng, err := admit.New(admit.Config{
		Graph:         s.Graph,
		Frame:         s.Frame,
		MaxWindow:     cfg.MaxWindow,
		MILP:          opts,
		BudgetRejects: cfg.BudgetRejects,
		Zoned:         cfg.Zoned,
		Sharded:       cfg.Sharded,
		ZoneSize:      s.ZoneSize,
		CompactEvery:  cfg.CompactEvery,
		MemoSize:      cfg.MemoSize,
		UGSDeadline:   cfg.UGSDeadline,
		RtPSWindow:    cfg.RtPSWindow,
		Preempt:       cfg.Preempt,
		Registry:      cfg.Registry,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Session{sys: s, eng: eng}, nil
}

// Engine exposes the underlying admission engine (for workload replay via
// admit.Serve and for metrics snapshots).
func (s *Session) Engine() *admit.Engine { return s.eng }

// Window returns the current schedule makespan in slots.
func (s *Session) Window() int { return s.eng.Window() }

// NumCalls returns the number of calls currently admitted.
func (s *Session) NumCalls() int { return s.eng.NumFlows() }

// Stats returns cumulative serving counters.
func (s *Session) Stats() admit.Stats { return s.eng.Stats() }

// CallSlots computes the per-hop slot demand of one codec call along path —
// the identical adaptive-rate conversion Plan applies to a flow set: each
// link's PHY rate sets its bytes-per-slot capacity, and the codec's on-wire
// bandwidth (payload + RTP/UDP/IP) is rounded up to whole slots per frame.
func (s *System) CallSlots(path topology.Path, codec voip.Codec) ([]int, error) {
	if err := codec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s.ServiceSlots(path, codec.Service())
}

// ServiceSlots computes the per-hop slot demand of one constant-rate service
// flow along path, with the same adaptive-rate conversion as CallSlots: each
// link's PHY rate sets its bytes-per-slot capacity for the service's packet
// size, and the service bandwidth is rounded up to whole slots per frame.
func (s *System) ServiceSlots(path topology.Path, svc voip.Service) ([]int, error) {
	if err := svc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mac := s.MAC.Defaulted()
	slots := make([]int, len(path))
	for i, l := range path {
		lk, err := s.Topo.Link(l)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		rate := mac.DataRateBps
		if lk.RateBps > 0 && mac.PHY.SupportsRate(lk.RateBps) {
			rate = lk.RateBps
		}
		b, err := tdmaemu.BytesPerSlotAtRate(mac, s.Frame, svc.PacketBytes, rate)
		if err != nil {
			return nil, err
		}
		if b <= 0 {
			return nil, fmt.Errorf("core: a %v slot at %g b/s cannot carry a %d-byte packet (link %d)",
				s.Frame.SlotDuration(), rate, svc.PacketBytes, l)
		}
		d := int(math.Ceil(svc.BitrateBps * s.Frame.FrameDuration.Seconds() / float64(8*b)))
		if d < 1 {
			d = 1
		}
		slots[i] = d
	}
	return slots, nil
}

// AdmitCall routes one codec call over the minimum-hop path and asks the
// engine to admit it. A nil error with Decision.Admitted == false is a
// capacity rejection, not a failure; the path is returned either way. ctx
// cancellation interrupts an in-flight solve and rolls the schedule back.
func (s *Session) AdmitCall(ctx context.Context, id admit.FlowID, src, dst topology.NodeID, codec voip.Codec) (admit.Decision, topology.Path, error) {
	path, err := s.sys.Topo.ShortestPath(src, dst)
	if err != nil {
		return admit.Decision{}, nil, fmt.Errorf("core: route %d->%d: %w", src, dst, err)
	}
	slots, err := s.sys.CallSlots(path, codec)
	if err != nil {
		return admit.Decision{}, path, err
	}
	// Voice is the UGS service: without a configured UGSDeadline the tag is
	// purely informational and the decision matches an untagged engine's.
	dec, err := s.eng.Admit(ctx, admit.Flow{ID: id, Path: path, Slots: slots, Class: admit.ClassUGS})
	return dec, path, err
}

// AdmitService routes one constant-rate service flow over the minimum-hop
// path and asks the engine to admit it under the given service class — the
// generalization of AdmitCall to video (rtPS), bulk data (nrtPS) and
// best-effort traffic. A nil error with Decision.Admitted == false is a
// capacity rejection; with preemption configured, Decision.Preempted lists
// any flows evicted to make room.
func (s *Session) AdmitService(ctx context.Context, id admit.FlowID, src, dst topology.NodeID, svc voip.Service, class admit.Class) (admit.Decision, topology.Path, error) {
	path, err := s.sys.Topo.ShortestPath(src, dst)
	if err != nil {
		return admit.Decision{}, nil, fmt.Errorf("core: route %d->%d: %w", src, dst, err)
	}
	slots, err := s.sys.ServiceSlots(path, svc)
	if err != nil {
		return admit.Decision{}, path, err
	}
	dec, err := s.eng.Admit(ctx, admit.Flow{ID: id, Path: path, Slots: slots, Class: class})
	return dec, path, err
}

// ReleaseCall removes a previously admitted call and reclaims its slots.
func (s *Session) ReleaseCall(id admit.FlowID) error { return s.eng.Release(id) }
