package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"wimesh/internal/mac/dcf"
	"wimesh/internal/mac/tdmaemu"
	"wimesh/internal/obs"
	"wimesh/internal/sim"
	"wimesh/internal/timesync"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// RunConfig parameterizes one simulation run.
type RunConfig struct {
	// Duration is the simulated time (default 10 s).
	Duration time.Duration
	// Codec is the voice codec (default G.711).
	Codec voip.Codec
	// Mode selects CBR or talk-spurt sources (default CBR).
	Mode voip.SourceMode
	// Seed drives all randomness.
	Seed int64
	// Sync enables the clock model for TDMA emulation (nil = ideal
	// clocks). Ignored by DCF.
	Sync *timesync.Config
	// WarmUp excludes initial packets from the measurements (default
	// Duration/10).
	WarmUp time.Duration
	// QueueCap overrides the finite per-link MAC queue depth in packets
	// for both MACs (0 = the MAC's own default, 64). The analytic screen
	// models the same bound, so predictions and simulations agree on when
	// tail drops start.
	QueueCap int
	// AbortOnProvableFailure arms the quality monitor: the run terminates
	// as soon as some flow provably cannot recover toll quality (see
	// qualityMonitor). An aborted run reports Aborted with AllAcceptable
	// false and no per-flow results; the pass/fail verdict is identical to
	// the full-length run's, which is what capacity searches consume.
	AbortOnProvableFailure bool
	// abortHeuristically additionally lets the monitor abort on a
	// face-value failure estimate rather than a proof. Only the capacity
	// search's pilot probes use it — their outcomes steer the search but are
	// never consumed for the result, so an unsound abort can cost a
	// fallback, never correctness.
	abortHeuristically bool
	// Metrics, when set, receives the run's counters (MAC metrics, abort
	// verdicts). Nil falls back to the process default (obs.Default); with
	// neither, observability is off at zero cost.
	Metrics *obs.Registry
	// Trace, when set, receives the run's structured slot/abort events. Nil
	// falls back to obs.DefaultTrace.
	Trace *obs.Trace
}

func (c *RunConfig) applyDefaults() {
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Codec.Name == "" {
		c.Codec = voip.G711()
	}
	if c.Mode == 0 {
		c.Mode = voip.ModeCBR
	}
	if c.WarmUp == 0 {
		c.WarmUp = c.Duration / 10
	}
}

// FlowResult is the measured performance of one flow.
type FlowResult struct {
	FlowID topology.FlowID
	// Sent and Received count measured packets (inside the measurement
	// window).
	Sent, Received int
	// Loss is the fraction of measured packets not delivered.
	Loss float64
	// MeanDelay, P95Delay and MaxDelay summarize network delay.
	MeanDelay, P95Delay, MaxDelay time.Duration
	// JitterBuffer is the planned playout buffer: the smallest depth
	// keeping late loss at or below 1%.
	JitterBuffer time.Duration
	// LateLoss is the fraction of delivered packets missing the playout
	// instant (part of the loss fed to the E-model).
	LateLoss float64
	// MouthToEar is the E-model delay input: playout buffer plus
	// packetization and codec lookahead.
	MouthToEar time.Duration
	// Quality is the E-model score.
	Quality voip.Quality
}

// RunResult aggregates one simulation run.
type RunResult struct {
	Flows []FlowResult
	// MinR is the worst flow R-factor.
	MinR float64
	// AllAcceptable reports that every flow kept toll quality.
	AllAcceptable bool
	// Aborted reports that the quality monitor stopped the run early at
	// AbortedAt: some flow provably could not recover toll quality, so the
	// verdict is a quality failure (AllAcceptable false) and no per-flow
	// measurements are assembled.
	Aborted   bool
	AbortedAt time.Duration
	// TDMA and DCF hold the MAC counters of whichever MAC ran.
	TDMA *tdmaemu.Stats
	DCF  *dcf.Stats
}

// measurementWindow returns [lo, hi) of packet-creation times that count.
func measurementWindow(cfg RunConfig, frame time.Duration) (time.Duration, time.Duration) {
	drain := 10 * frame
	if drain < 200*time.Millisecond {
		drain = 200 * time.Millisecond
	}
	hi := cfg.Duration - drain
	if hi <= cfg.WarmUp {
		hi = cfg.Duration // degenerate short runs: measure everything
		return cfg.WarmUp / 2, hi
	}
	return cfg.WarmUp, hi
}

// abortChecks is how many times the quality monitor evaluates during a
// monitored run.
const abortChecks = 16

// runKernel drives the kernel to duration. With a monitor it pauses at
// evenly spaced checkpoints; chunked RunUntil calls follow exactly the same
// event trajectory as a single call, so an unaborted monitored run is
// bit-identical to an unmonitored one.
func runKernel(kernel *sim.Kernel, duration time.Duration, mon *qualityMonitor) (bool, time.Duration) {
	if mon == nil {
		kernel.RunUntil(duration)
		return false, 0
	}
	if step := (duration - mon.lo) / (abortChecks + 1); step > 0 {
		for t := mon.lo + step; t < duration; t += step {
			kernel.RunUntil(t)
			if mon.shouldAbort(kernel.Now()) {
				return true, kernel.Now()
			}
		}
	}
	kernel.RunUntil(duration)
	return false, 0
}

// RunTDMA simulates the flow set over the TDMA-over-WiFi emulation using the
// plan's schedule.
func (s *System) RunTDMA(plan *Plan, fs *topology.FlowSet, cfg RunConfig) (*RunResult, error) {
	if plan == nil || plan.Schedule == nil {
		return nil, errors.New("core: nil plan")
	}
	if fs == nil || len(fs.Flows) == 0 {
		return nil, errors.New("core: no flows")
	}
	cfg.applyDefaults()
	kernel := sim.NewKernel()

	var ts *timesync.Sync
	if cfg.Sync != nil {
		rt, err := s.Topo.BuildRoutingTree()
		if err != nil {
			return nil, fmt.Errorf("core: sync needs a gateway: %w", err)
		}
		ts, err = timesync.New(*cfg.Sync, rt.Depth, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if _, err := ts.Start(kernel); err != nil {
			return nil, err
		}
	}

	lo, hi := measurementWindow(cfg, s.Frame.FrameDuration)
	cs := acquireCollectors(fs, cfg.AbortOnProvableFailure)
	defer cs.release()
	var mon *qualityMonitor
	if cfg.AbortOnProvableFailure {
		mon = newQualityMonitor(cfg.Codec, lo, hi, fs.Flows, cs, cfg.abortHeuristically)
	}
	macCfg := s.MAC
	if cfg.QueueCap > 0 {
		macCfg.QueueCap = cfg.QueueCap
	}
	if cfg.Metrics != nil {
		macCfg.Metrics = cfg.Metrics
	}
	if cfg.Trace != nil {
		macCfg.Trace = cfg.Trace
	}
	// Delivered packets are recycled into a pool (the MAC hands over
	// ownership at the callback); only packets the MAC drops are garbage.
	var pktPool []*tdmaemu.Packet
	nw, err := tdmaemu.New(macCfg, s.Topo, kernel, plan.Schedule, ts, s.InterferenceRange,
		func(p *tdmaemu.Packet, at time.Duration) {
			if p.Created >= lo && p.Created < hi {
				cs.observeDelivery(p.FlowID, p.Seq, at-p.Created)
			}
			pktPool = append(pktPool, p)
		})
	if err != nil {
		return nil, err
	}
	if err := nw.Start(); err != nil {
		return nil, err
	}

	sources, err := startSources(kernel, fs, cfg, func(f topology.Flow, pkt voip.Packet) {
		if pkt.Sent >= lo && pkt.Sent < hi {
			cs.observeSend(int(f.ID), pkt.Seq, pkt.Sent)
		}
		var p *tdmaemu.Packet
		if n := len(pktPool); n > 0 {
			p = pktPool[n-1]
			pktPool = pktPool[:n-1]
		} else {
			p = &tdmaemu.Packet{}
		}
		*p = tdmaemu.Packet{FlowID: int(f.ID), Seq: pkt.Seq, Path: f.Path, Bytes: pkt.Bytes}
		if err := nw.Inject(p); err != nil {
			// Injection only fails for malformed packets; surface loudly in
			// measurements by counting nothing.
			return
		}
	})
	if err != nil {
		return nil, err
	}
	aborted, at := runKernel(kernel, cfg.Duration, mon)
	for _, src := range sources {
		src.Stop()
	}
	st := nw.Stats()
	if aborted {
		observeAbort(cfg, at)
		return &RunResult{Aborted: true, AbortedAt: at, TDMA: &st}, nil
	}
	res, err := assemble(fs, cs, cfg)
	if err != nil {
		return nil, err
	}
	res.TDMA = &st
	return res, nil
}

// RunDCF simulates the flow set over plain 802.11 DCF (no schedule).
func (s *System) RunDCF(fs *topology.FlowSet, cfg RunConfig) (*RunResult, error) {
	if fs == nil || len(fs.Flows) == 0 {
		return nil, errors.New("core: no flows")
	}
	cfg.applyDefaults()
	kernel := sim.NewKernel()

	lo, hi := measurementWindow(cfg, s.Frame.FrameDuration)
	cs := acquireCollectors(fs, cfg.AbortOnProvableFailure)
	defer cs.release()
	var mon *qualityMonitor
	if cfg.AbortOnProvableFailure {
		mon = newQualityMonitor(cfg.Codec, lo, hi, fs.Flows, cs, cfg.abortHeuristically)
	}
	// Dense per-flow routes (FlowIDs are assigned positionally).
	routes := make([][]topology.NodeID, len(cs.cols))
	for _, f := range fs.Flows {
		nodes, err := s.Topo.PathNodes(f.Path)
		if err != nil {
			return nil, fmt.Errorf("core: flow %d: %w", f.ID, err)
		}
		routes[int(f.ID)] = nodes
	}
	// The DCF baseline reuses the emulation's PHY and rate; zero values let
	// dcf apply the same 802.11b/11 Mb/s defaults.
	dcfCfg := dcf.Config{
		PHY:         s.MAC.PHY,
		DataRateBps: s.MAC.DataRateBps,
		QueueCap:    cfg.QueueCap,
		Seed:        cfg.Seed,
		Metrics:     cfg.Metrics,
		Trace:       cfg.Trace,
	}
	var pktPool []*dcf.Packet
	nw, err := dcf.New(dcfCfg, s.Topo, kernel, s.InterferenceRange,
		func(p *dcf.Packet, at time.Duration) {
			if p.Created >= lo && p.Created < hi {
				cs.observeDelivery(p.FlowID, p.Seq, at-p.Created)
			}
			pktPool = append(pktPool, p)
		})
	if err != nil {
		return nil, err
	}

	sources, err := startSources(kernel, fs, cfg, func(f topology.Flow, pkt voip.Packet) {
		if pkt.Sent >= lo && pkt.Sent < hi {
			cs.observeSend(int(f.ID), pkt.Seq, pkt.Sent)
		}
		var p *dcf.Packet
		if n := len(pktPool); n > 0 {
			p = pktPool[n-1]
			pktPool = pktPool[:n-1]
		} else {
			p = &dcf.Packet{}
		}
		*p = dcf.Packet{FlowID: int(f.ID), Seq: pkt.Seq, Route: routes[int(f.ID)], Bytes: pkt.Bytes}
		if err := nw.Inject(p); err != nil {
			return
		}
	})
	if err != nil {
		return nil, err
	}
	aborted, at := runKernel(kernel, cfg.Duration, mon)
	for _, src := range sources {
		src.Stop()
	}
	st := nw.Stats()
	if aborted {
		observeAbort(cfg, at)
		return &RunResult{Aborted: true, AbortedAt: at, DCF: &st}, nil
	}
	res, err := assemble(fs, cs, cfg)
	if err != nil {
		return nil, err
	}
	res.DCF = &st
	return res, nil
}

// observeAbort records a quality-monitor abort: heuristic (pilot) aborts and
// provable ones are distinguishable because only the former may be unsound.
func observeAbort(cfg RunConfig, at time.Duration) {
	reg := obs.Or(cfg.Metrics)
	heur := int64(0)
	if cfg.abortHeuristically {
		heur = 1
		reg.Counter("core.pilot_aborts").Inc()
	} else {
		reg.Counter("core.monitor_aborts").Inc()
	}
	obs.OrTrace(cfg.Trace).Emit(obs.Event{T: at, Kind: obs.KindAbort,
		Node: -1, Link: -1, Slot: -1, Frame: -1, A: heur})
}

// startSources creates and starts one voice source per flow, staggered by a
// fraction of the packet interval.
func startSources(kernel *sim.Kernel, fs *topology.FlowSet, cfg RunConfig,
	inject func(topology.Flow, voip.Packet)) ([]*voip.Source, error) {
	sources := make([]*voip.Source, 0, len(fs.Flows))
	for i, f := range fs.Flows {
		f := f
		// CBR sources never draw from their rng; skip seeding it. The
		// talk-spurt stream derivation (seed, i+5000) is unchanged.
		var rng *rand.Rand
		if cfg.Mode == voip.ModeTalkSpurt {
			rng = sim.NewRNG(cfg.Seed, int64(i)+5000)
		}
		src, err := voip.NewSource(cfg.Codec, cfg.Mode, func(pkt voip.Packet) {
			inject(f, pkt)
		}, rng)
		if err != nil {
			return nil, err
		}
		offset := cfg.Codec.PacketInterval * time.Duration(i) / time.Duration(len(fs.Flows)+1)
		if err := src.Start(kernel, offset); err != nil {
			return nil, err
		}
		sources = append(sources, src)
	}
	return sources, nil
}

// assemble turns the collected measurements into a RunResult with E-model
// scores. Mean is computed before the first order query (which sorts the
// sample in place) so the float summation order matches insertion order; the
// playout evaluation then reuses the sorted backing without copying.
func assemble(fs *topology.FlowSet, cs *collectorSet, cfg RunConfig) (*RunResult, error) {
	res := &RunResult{MinR: 100, AllAcceptable: true}
	for _, f := range fs.Flows {
		pr := &cs.cols[int(f.ID)]
		fr := FlowResult{FlowID: f.ID, Sent: pr.sent, Received: pr.received}
		if pr.sent > 0 {
			fr.Loss = 1 - float64(pr.received)/float64(pr.sent)
			if fr.Loss < 0 {
				fr.Loss = 0 // duplicates cannot happen; guard rounding
			}
		}
		if pr.delays.Len() > 0 {
			mean, err := pr.delays.Mean()
			if err != nil {
				return nil, err
			}
			p95, err := pr.delays.Quantile(0.95)
			if err != nil {
				return nil, err
			}
			maxV, err := pr.delays.Max()
			if err != nil {
				return nil, err
			}
			fr.MeanDelay = time.Duration(mean * float64(time.Second))
			fr.P95Delay = time.Duration(p95 * float64(time.Second))
			fr.MaxDelay = time.Duration(maxV * float64(time.Second))
			// Receiver-side playout: smallest jitter buffer keeping late
			// loss <= 1%; late losses add to the network loss. The
			// seconds-to-duration conversion is monotone, so converting the
			// sorted floats yields the same ascending durations the old
			// copy-and-sort path produced.
			// SortedView (not Sorted): the floats are consumed into durs
			// before the next observation, so the zero-copy view is safe.
			durs := cs.durs[:0]
			for _, x := range pr.delays.SortedView() {
				durs = append(durs, time.Duration(x*float64(time.Second)))
			}
			cs.durs = durs
			q, po, err := voip.EvaluateWithPlayoutSorted(cfg.Codec, durs, fr.Loss, playoutLateTarget)
			if err != nil {
				return nil, err
			}
			fr.JitterBuffer = po.Buffer
			fr.LateLoss = po.LateLoss
			fr.MouthToEar = voip.EndToEndDelay(cfg.Codec, po.Buffer, 0)
			fr.Quality = q
		} else {
			fr.Quality = voip.Quality{R: 0, MOS: 1}
		}
		if fr.Quality.R < res.MinR {
			res.MinR = fr.Quality.R
		}
		if !fr.Quality.Acceptable() {
			res.AllAcceptable = false
		}
		res.Flows = append(res.Flows, fr)
	}
	return res, nil
}
