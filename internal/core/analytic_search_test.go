package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"wimesh/internal/obs"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// TestAnalyticSearchMatchesLinear pins the screening contract end to end on
// real systems: the analytic-screened galloping search must return results
// identical to the reference linear scan — same capacity, same stop reason,
// same last-good run — because verdicts only ever come from full-length
// probes; the closed-form screen affects which call counts get probed, never
// what a probe decides. Worker counts 1 and 4 must also agree (probe
// outcomes are pure functions of the call count), which the race detector
// cross-checks when the differential suite runs this with -race.
func TestAnalyticSearchMatchesLinear(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*topology.Network, error)
		tdma  bool
	}{
		{"chain4-tdma", func() (*topology.Network, error) { return topology.Chain(4, 100) }, true},
		{"chain4-dcf", func() (*topology.Network, error) { return topology.Chain(4, 100) }, false},
		{"grid9-tdma", func() (*topology.Network, error) { return topology.Grid(3, 3, 100) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh system per search keeps the comparisons independent:
			// nothing cached on one run can leak into another.
			search := func(cfg CapacityConfig) *CapacityResult {
				topo, err := tc.build()
				if err != nil {
					t.Fatal(err)
				}
				sys, err := NewSystem(topo)
				if err != nil {
					t.Fatal(err)
				}
				var res *CapacityResult
				if tc.tdma {
					res, err = sys.VoIPCapacityTDMA(cfg)
				} else {
					res, err = sys.VoIPCapacityDCF(cfg)
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := CapacityConfig{
				MaxCalls: 12,
				Run:      RunConfig{Duration: time.Second, Seed: 11},
			}
			linCfg := base
			linCfg.Search = SearchLinear
			lin := search(linCfg)
			if lin.Calls == 0 {
				t.Fatalf("degenerate scenario: linear scan found capacity 0 (%s)", lin.StoppedBy)
			}
			for _, workers := range []int{1, 4} {
				cfg := base
				cfg.Screen = ScreenAnalytic
				cfg.Workers = workers
				got := search(cfg)
				if !reflect.DeepEqual(lin, got) {
					t.Fatalf("workers=%d: screened search diverged from linear scan:\nlinear:   calls=%d stop=%s\nscreened: calls=%d stop=%s",
						workers, lin.Calls, lin.StoppedBy, got.Calls, got.StoppedBy)
				}
			}
		})
	}
}

// TestAnalyticVsSimulated sweeps the closed-form model against full
// simulation across topology shapes, codecs and queue depths. At a light
// load (two calls) both must agree the network is acceptable, and the
// prediction must be structurally sane: one entry per flow, ordered delay
// statistics, loss inside [0,1]. Each scenario then runs one screened
// capacity search against a private metrics registry and checks the bracket
// accounting: every search records exactly one verdict on
// core.screen_bracket_hit / core.screen_bracket_miss, and across the whole
// matrix the screen must confirm at least one bracket (a screen that always
// misses is dead weight).
func TestAnalyticVsSimulated(t *testing.T) {
	topos := []struct {
		name  string
		build func() (*topology.Network, error)
	}{
		{"chain6", func() (*topology.Network, error) { return topology.Chain(6, 100) }},
		{"tree7", func() (*topology.Network, error) { return topology.Tree(2, 2) }},
		{"grid9", func() (*topology.Network, error) { return topology.Grid(3, 3, 100) }},
	}
	codecs := []struct {
		name  string
		codec voip.Codec
	}{
		{"g711", voip.G711()},
		{"g729", voip.G729()},
	}
	queueCaps := []int{0, 6} // MAC default and a shallow finite buffer
	var hits, misses uint64
	for _, tp := range topos {
		for _, cd := range codecs {
			for _, qcap := range queueCaps {
				name := fmt.Sprintf("%s/%s/qcap%d", tp.name, cd.name, qcap)
				t.Run(name, func(t *testing.T) {
					topo, err := tp.build()
					if err != nil {
						t.Fatal(err)
					}
					sys, err := NewSystem(topo)
					if err != nil {
						t.Fatal(err)
					}
					fs, err := GatewayCalls(topo, 2, cd.codec, 150*time.Millisecond, false)
					if err != nil {
						t.Fatal(err)
					}
					rc := RunConfig{Duration: time.Second, Seed: 7, Codec: cd.codec, QueueCap: qcap}
					plan, err := sys.PlanVoIP(fs, MethodPathMajor, cd.codec)
					if err != nil {
						t.Fatal(err)
					}
					res, err := sys.RunTDMA(plan, fs, rc)
					if err != nil {
						t.Fatal(err)
					}
					pred, err := sys.AnalyticTDMA(plan, fs, rc)
					if err != nil {
						t.Fatal(err)
					}
					if len(pred.Flows) != len(res.Flows) {
						t.Fatalf("prediction covers %d flows, simulation %d", len(pred.Flows), len(res.Flows))
					}
					for _, pf := range pred.Flows {
						if pf.MeanDelay <= 0 || pf.MaxDelay < pf.MeanDelay || pf.MaxDelay < pf.P95Delay {
							t.Fatalf("flow %d: disordered delay stats mean=%v p95=%v max=%v",
								pf.FlowID, pf.MeanDelay, pf.P95Delay, pf.MaxDelay)
						}
						if pf.Loss < 0 || pf.Loss > 1 {
							t.Fatalf("flow %d: loss %v outside [0,1]", pf.FlowID, pf.Loss)
						}
					}
					if pred.MaxUtilization <= 0 {
						t.Fatalf("max utilization %v, want > 0", pred.MaxUtilization)
					}
					if !res.AllAcceptable {
						t.Fatalf("simulation rejects a 2-call light load (min R %.1f)", res.MinR)
					}
					if !pred.AllAcceptable {
						t.Fatalf("screen rejects a light load the simulation accepts (predicted min R %.1f)", pred.MinR)
					}

					reg := obs.NewRegistry()
					capRes, err := sys.VoIPCapacityTDMA(CapacityConfig{
						MaxCalls: 10,
						Run:      RunConfig{Duration: time.Second, Seed: 7, Codec: cd.codec, QueueCap: qcap, Metrics: reg},
						Screen:   ScreenAnalytic,
					})
					if err != nil {
						t.Fatal(err)
					}
					h := reg.Counter("core.screen_bracket_hit").Value()
					m := reg.Counter("core.screen_bracket_miss").Value()
					if h+m != 1 {
						t.Fatalf("bracket accounting: hit=%d miss=%d, want exactly one verdict per search", h, m)
					}
					// The 2-call run passed above with this exact probe
					// config, so the (linear-equivalent) search must admit
					// at least those calls.
					if capRes.Calls < 2 {
						t.Fatalf("capacity %d (stop %s), but 2 calls were acceptable", capRes.Calls, capRes.StoppedBy)
					}
					hits += h
					misses += m
				})
			}
		}
	}
	if hits == 0 {
		t.Fatalf("analytic screen never confirmed a bracket across the matrix (%d misses)", misses)
	}
	t.Logf("bracket verdicts across matrix: %d hits, %d misses", hits, misses)
}
