package core

import (
	"errors"
	"fmt"
	"time"

	"wimesh/internal/mac/tdmaemu"
	"wimesh/internal/milp"
	"wimesh/internal/partition"
	"wimesh/internal/schedule"
	"wimesh/internal/tdma"
	"wimesh/internal/topology"
	"wimesh/internal/voip"
)

// PlanMethod selects the scheduling algorithm.
type PlanMethod int

// Scheduling methods.
const (
	// MethodILP runs the Djukic-Valaee linear search with an ILP
	// feasibility test per window: minimum slots, delay bounds honored.
	MethodILP PlanMethod = iota + 1
	// MethodMinMaxDelay solves the exact min-max delay order optimization
	// over the full frame.
	MethodMinMaxDelay
	// MethodPathMajor uses the greedy delay-aware order (hops in path
	// order) with Bellman-Ford and a binary search on the window.
	MethodPathMajor
	// MethodTreeOrder uses the polynomial overlay-tree order (gateway
	// traffic) with Bellman-Ford.
	MethodTreeOrder
	// MethodGreedy is the delay-oblivious first-fit coloring baseline.
	MethodGreedy
	// MethodPartitioned cuts the mesh into interference zones, solves the
	// per-zone ILPs concurrently and stitches the results — the city-scale
	// path (see internal/partition). Throughput demands are met exactly;
	// delay bounds only steer the in-zone solves.
	MethodPartitioned
)

func (m PlanMethod) String() string {
	switch m {
	case MethodILP:
		return "ilp"
	case MethodMinMaxDelay:
		return "minmax-delay"
	case MethodPathMajor:
		return "path-major"
	case MethodTreeOrder:
		return "tree-order"
	case MethodGreedy:
		return "greedy"
	case MethodPartitioned:
		return "partitioned"
	default:
		return fmt.Sprintf("PlanMethod(%d)", int(m))
	}
}

// Plan is a computed QoS schedule.
type Plan struct {
	Method   PlanMethod
	Schedule *tdma.Schedule
	Problem  *schedule.Problem
	// WindowSlots is the number of slots the schedule occupies.
	WindowSlots int
	// MaxSchedulingDelay is the largest end-to-end scheduling delay over
	// the planned flows (excludes the initial up-to-one-frame wait).
	MaxSchedulingDelay time.Duration
	// ILPsSolved counts integer programs solved (MethodILP,
	// MethodPartitioned).
	ILPsSolved int
}

// DefaultMILPOptions bounds the planner's branch-and-bound searches.
func DefaultMILPOptions() milp.Options {
	return milp.Options{MaxNodes: 500_000, TimeLimit: 30 * time.Second}
}

// Plan computes a conflict-free TDMA schedule supporting every flow in fs
// (demands from packet sizes, delay bounds from flow DelayBounds).
// packetBytes is the IP packet size the flows carry (voip codec packets);
// it sets the slot demand conversion.
func (s *System) Plan(fs *topology.FlowSet, method PlanMethod, packetBytes int) (*Plan, error) {
	if fs == nil || len(fs.Flows) == 0 {
		return nil, errors.New("core: no flows to plan")
	}
	if packetBytes <= 0 {
		return nil, fmt.Errorf("core: bad packet size %d", packetBytes)
	}
	// Per-link slot capacity honors each link's PHY rate (adaptive
	// modulation): slower links carry fewer bytes per slot and therefore
	// demand more slots.
	mac := s.MAC.Defaulted()
	perLink := make(map[topology.LinkID]int)
	for l := range fs.LinkDemandBps() {
		lk, err := s.Topo.Link(l)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		rate := mac.DataRateBps
		if lk.RateBps > 0 && mac.PHY.SupportsRate(lk.RateBps) {
			rate = lk.RateBps
		}
		b, err := tdmaemu.BytesPerSlotAtRate(mac, s.Frame, packetBytes, rate)
		if err != nil {
			return nil, err
		}
		if b <= 0 {
			return nil, fmt.Errorf("core: a %v slot at %g b/s cannot carry a %d-byte packet (link %d)",
				s.Frame.SlotDuration(), rate, packetBytes, l)
		}
		perLink[l] = b
	}
	demand, err := schedule.SlotDemand(fs, s.Frame, func(l topology.LinkID) int { return perLink[l] })
	if err != nil {
		return nil, err
	}
	reqs, err := schedule.Requirements(fs, s.Frame)
	if err != nil {
		return nil, err
	}
	p := &schedule.Problem{
		Graph:      s.Graph,
		Demand:     demand,
		FrameSlots: s.Frame.DataSlots,
		Flows:      reqs,
	}
	plan := &Plan{Method: method, Problem: p}
	switch method {
	case MethodILP:
		win, sched, solved, err := schedule.MinSlots(p, s.Frame, DefaultMILPOptions())
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots, plan.ILPsSolved = sched, win, solved
	case MethodMinMaxDelay:
		res, err := schedule.MinMaxDelayOrder(p, s.Frame.DataSlots, s.Frame, DefaultMILPOptions())
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots = res.Schedule, s.Frame.DataSlots
	case MethodPathMajor:
		win, sched, err := schedule.MinWindowForOrder(p, schedule.PathMajorOrder(p), s.Frame)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots = sched, win
	case MethodTreeOrder:
		rt, err := s.Topo.BuildRoutingTree()
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		order, err := schedule.TreeOrder(p, rt, s.Topo)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		win, sched, err := schedule.MinWindowForOrder(p, order, s.Frame)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots = sched, win
	case MethodGreedy:
		sched, err := schedule.Greedy(p, s.Frame)
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots = sched, schedule.GreedyLength(sched)
	case MethodPartitioned:
		res, err := partition.MinSlots(p, s.Frame, partition.Options{
			ZoneSize: s.ZoneSize,
			MILP:     DefaultMILPOptions(),
		})
		if err != nil {
			return nil, fmt.Errorf("core: plan %v: %w", method, err)
		}
		plan.Schedule, plan.WindowSlots, plan.ILPsSolved = res.Schedule, res.WindowSlots, res.ILPsSolved
	default:
		return nil, fmt.Errorf("core: unknown plan method %d", int(method))
	}
	maxD, err := schedule.MaxPathDelay(p, plan.Schedule)
	if err != nil {
		return nil, err
	}
	plan.MaxSchedulingDelay = maxD
	return plan, nil
}

// PlanVoIP is Plan specialized to a codec's packet size.
func (s *System) PlanVoIP(fs *topology.FlowSet, method PlanMethod, codec voip.Codec) (*Plan, error) {
	return s.Plan(fs, method, codec.PacketBytes())
}
