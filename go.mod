module wimesh

go 1.22
