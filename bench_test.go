// Benchmarks regenerating the paper's evaluation (experiments R1-R8 of
// DESIGN.md) plus micro-benchmarks of the core algorithms. Each BenchmarkR*
// runs one full experiment per iteration and reports a headline metric; run
//
//	go test -bench=. -benchmem
//
// and compare the printed tables (via cmd/meshbench) against EXPERIMENTS.md.
package main

import (
	"strconv"
	"testing"
	"time"

	"wimesh/internal/conflict"
	"wimesh/internal/core"
	"wimesh/internal/experiments"
	"wimesh/internal/lp"
	"wimesh/internal/mac"
	"wimesh/internal/mac/dcf"
	"wimesh/internal/milp"
	"wimesh/internal/schedule"
	"wimesh/internal/sim"
	"wimesh/internal/tdma"
	"wimesh/internal/topology"
)

// metric extracts a float from a table cell for ReportMetric.
func metric(t *experiments.Table, row, col int) float64 {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return -1
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		return -1
	}
	return v
}

func BenchmarkR1MinFrameLength(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R1MinFrameLength()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Min slots for 6 chain calls.
	b.ReportMetric(metric(last, len(last.Rows)-1, 1), "slots/6calls")
}

func BenchmarkR2DelayAwareOrdering(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R2DelayAwareOrdering()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Optimal vs naive delay at 8 hops.
	b.ReportMetric(metric(last, len(last.Rows)-1, 1), "minmax-ms/8hops")
	b.ReportMetric(metric(last, len(last.Rows)-1, 4), "naive-ms/8hops")
}

func BenchmarkR3VoIPCapacity(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R3VoIPCapacity()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// chain6 capacities.
	b.ReportMetric(metric(last, 1, 1), "tdma-calls/chain6")
	b.ReportMetric(metric(last, 1, 3), "dcf-calls/chain6")
}

func BenchmarkR4DelayDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.R4DelayDistribution(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR5EmulationOverhead(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R5EmulationOverhead()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 2, 1), "voice-eff/2ms-slot")
}

func BenchmarkR6SyncTolerance(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R6SyncTolerance()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, len(last.Rows)-1, 1), "violations/200us-25us")
}

func BenchmarkR7SchedulerScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.R7SchedulerScalability(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR8DCFSaturation(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R8DCFSaturation()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, len(last.Rows)-1, 1), "Mbps/30senders")
}

// ---- micro-benchmarks of the core algorithms ----

func chainProblem(b *testing.B, n int, frame tdma.FrameConfig) *schedule.Problem {
	b.Helper()
	topo, err := topology.Chain(n, 100)
	if err != nil {
		b.Fatal(err)
	}
	g, err := conflict.Build(topo, conflict.Options{Model: conflict.ModelTwoHop})
	if err != nil {
		b.Fatal(err)
	}
	path, err := topo.ShortestPath(topology.NodeID(n-1), 0)
	if err != nil {
		b.Fatal(err)
	}
	demand := make(map[topology.LinkID]int)
	for _, l := range path {
		demand[l] = 1
	}
	return &schedule.Problem{Graph: g, Demand: demand, FrameSlots: frame.DataSlots,
		Flows: []schedule.FlowRequirement{{Path: path}}}
}

func BenchmarkOrderToSchedule16Hops(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 40 * time.Millisecond, DataSlots: 32}
	p := chainProblem(b, 17, frame)
	o := schedule.PathMajorOrder(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.OrderToSchedule(p, o, frame.DataSlots, frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinSlotsILPChain6(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 20 * time.Millisecond, DataSlots: 16}
	p := chainProblem(b, 6, frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := schedule.MinSlots(p, frame, milp.Options{MaxNodes: 100_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyColoringChain24(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 80 * time.Millisecond, DataSlots: 64}
	p := chainProblem(b, 24, frame)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Greedy(p, frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConflictGraphRandom20(b *testing.B) {
	topo, err := topology.RandomDisk(20, 800, 300, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conflict.Build(topo, conflict.Options{Model: conflict.ModelTwoHop}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictBuild measures conflict-graph construction: the O(L^2)
// pairwise loop with precomputed node relations and bitset adjacency.
func BenchmarkConflictBuild(b *testing.B) {
	chain, err := topology.Chain(32, 100)
	if err != nil {
		b.Fatal(err)
	}
	disk, err := topology.RandomDisk(20, 800, 300, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		topo *topology.Network
	}{{"chain32", chain}, {"disk20", disk}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := conflict.Build(tc.topo, conflict.Options{Model: conflict.ModelTwoHop}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConflictsQuery measures the Conflicts hot path (one bitset probe
// per query) over every link pair of a random mesh.
func BenchmarkConflictsQuery(b *testing.B) {
	topo, err := topology.RandomDisk(20, 800, 300, 3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := conflict.Build(topo, conflict.Options{Model: conflict.ModelTwoHop})
	if err != nil {
		b.Fatal(err)
	}
	n := topology.LinkID(g.NumVertices())
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		for a := topology.LinkID(0); a < n; a++ {
			for c := topology.LinkID(0); c < n; c++ {
				if g.Conflicts(a, c) {
					hits++
				}
			}
		}
	}
	if hits == 0 {
		b.Fatal("no conflicts in random mesh")
	}
}

// BenchmarkMILPParallel measures the branch-and-bound min-max delay search
// with a sequential and a parallel worker pool (identical results either
// way; the win scales with GOMAXPROCS).
func BenchmarkMILPParallel(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 20 * time.Millisecond, DataSlots: 16}
	p := chainProblem(b, 7, frame)
	for _, workers := range []int{1, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.MinMaxDelayOrder(p, frame.DataSlots, frame,
					milp.Options{MaxNodes: 300_000, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimplexLP(b *testing.B) {
	// A 20-var, 25-row LP representative of relaxations in the search.
	build := func() *lp.Problem {
		p := lp.NewProblem(lp.Maximize, 20)
		for j := 0; j < 20; j++ {
			if err := p.SetObjCoef(j, float64(j%7+1)); err != nil {
				b.Fatal(err)
			}
			if err := p.SetUpper(j, 10); err != nil {
				b.Fatal(err)
			}
		}
		for r := 0; r < 25; r++ {
			coef := make(map[int]float64, 4)
			for k := 0; k < 4; k++ {
				coef[(r*3+k*5)%20] = float64(k + 1)
			}
			if err := p.AddConstraint(coef, lp.LE, float64(20+r)); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSolve measures the steady-state simplex hot path of the
// branch-and-bound search: one Compile up front, then repeated solves from a
// pooled workspace. Pivoting itself is allocation-free; the reported allocs
// are the returned Solution.
func BenchmarkLPSolve(b *testing.B) {
	p := lp.NewProblem(lp.Maximize, 20)
	for j := 0; j < 20; j++ {
		if err := p.SetObjCoef(j, float64(j%7+1)); err != nil {
			b.Fatal(err)
		}
		if err := p.SetUpper(j, 10); err != nil {
			b.Fatal(err)
		}
	}
	for r := 0; r < 25; r++ {
		coef := make(map[int]float64, 4)
		for k := 0; k < 4; k++ {
			coef[(r*3+k*5)%20] = float64(k + 1)
		}
		if err := p.AddConstraint(coef, lp.LE, float64(20+r)); err != nil {
			b.Fatal(err)
		}
	}
	c, err := lp.Compile(p)
	if err != nil {
		b.Fatal(err)
	}
	solver := lp.NewSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(c, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMILPWarmVsCold runs the same window-feasibility integer program
// with parent-snapshot warm starts (the default) and with Options.ColdStart
// re-solving every node from scratch.
func BenchmarkMILPWarmVsCold(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 80 * time.Millisecond, DataSlots: 64}
	p := chainProblem(b, 12, frame)
	for _, tc := range []struct {
		name string
		cold bool
	}{{"warm", false}, {"cold", true}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := schedule.SolveWindow(p, 3, frame,
					milp.Options{MaxNodes: 200_000, Workers: 1, ColdStart: tc.cold}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinSlotsSearch measures the incremental minimum-window search:
// one ILP build, galloping + binary probes re-solving after bound/coefficient
// mutation.
func BenchmarkMinSlotsSearch(b *testing.B) {
	frame := tdma.FrameConfig{FrameDuration: 80 * time.Millisecond, DataSlots: 64}
	p := chainProblem(b, 16, frame)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := schedule.MinSlots(p, frame, milp.Options{MaxNodes: 200_000, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.After(time.Microsecond, func() {}); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
}

func BenchmarkR9MultiService(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R9MultiService()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// BE capacity with zero and max voice calls.
	b.ReportMetric(metric(last, 0, 3), "BE-Mbps/0calls")
	b.ReportMetric(metric(last, len(last.Rows)-1, 3), "BE-Mbps/5calls")
}

func BenchmarkR10HiddenTerminal(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R10HiddenTerminal()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 4), "dcf-collision-rate")
	b.ReportMetric(metric(last, 2, 4), "tdma-collision-rate")
}

func BenchmarkR11ControlPlane(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R11ControlPlane()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, len(last.Rows)-1, 1), "cen-opps/16nodes")
	b.ReportMetric(metric(last, len(last.Rows)-1, 4), "dist-msgs/16nodes")
}

func BenchmarkR12Failover(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R12Failover()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 3), "after-loss-pct/100ms-detect")
}

func BenchmarkR13MixedService(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R13MixedService()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 1, 1), "voiceR/priority-flood")
	b.ReportMetric(metric(last, 2, 1), "voiceR/fifo-flood")
}

func BenchmarkR14NativeVsEmulated(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R14NativeVsEmulated()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 2), "emu-Mbps")
	b.ReportMetric(metric(last, 2, 2), "native-Mbps")
}

func BenchmarkR15RoutingMetric(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R15RoutingMetric()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 3), "hopcount-delivery-pct")
	b.ReportMetric(metric(last, 2, 3), "etx-delivery-pct")
}

func BenchmarkR16ConflictModel(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R16ConflictModel()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 2), "violations/primary")
	b.ReportMetric(metric(last, 2, 2), "violations/geometric")
}

func BenchmarkR17FrameDuration(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R17FrameDuration()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 3), "calls/8ms-frame")
	b.ReportMetric(metric(last, len(last.Rows)-1, 3), "calls/64ms-frame")
}

func BenchmarkR18PartitionedScale(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R18PartitionedScale()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 4, 7), "window/1000nodes")
	b.ReportMetric(metric(last, 4, 3), "flows/1000nodes")
}

func BenchmarkR19AdmissionServing(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R19AdmissionServing()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 0, 9), "adm/s-village")
	b.ReportMetric(metric(last, 2, 4), "admitted/1000nodes")
}

// BenchmarkR20ShardedServing runs the serial-vs-sharded serving comparison
// and reports the 1000-node throughput of both modes plus the speedup — the
// acceptance figure for the sharded engine (rows: 250/w1, 250/w8, 1000/w1,
// 1000/w8; col 8 = adm/s, col 9 = speedup over the same mesh's serial row).
func BenchmarkR20ShardedServing(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R20ShardedServing()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 2, 8), "adm/s-serial-1000nodes")
	b.ReportMetric(metric(last, 3, 8), "adm/s-sharded-1000nodes")
	b.ReportMetric(metric(last, 3, 9), "speedup/1000nodes")
}

// BenchmarkR21ClassScheduling runs the mixed-class admission comparison and
// reports the 1000-node admitted counts of both arms plus the evictions the
// preemptive arm paid for its gain (rows: 250/off, 250/on, 1000/off,
// 1000/on; col 4 = admitted, col 6 = preempted).
func BenchmarkR21ClassScheduling(b *testing.B) {
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.R21ClassScheduling()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(last, 2, 4), "admitted-nopreempt-1000nodes")
	b.ReportMetric(metric(last, 3, 4), "admitted-preempt-1000nodes")
	b.ReportMetric(metric(last, 3, 6), "evicted-preempt-1000nodes")
}

// BenchmarkKernelAfterStep measures the kernel's schedule+execute hot path;
// steady state must be allocation-free (slab + free list + value heap).
func BenchmarkKernelAfterStep(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	// Warm the slab and heap so the loop measures steady state.
	for i := 0; i < 256; i++ {
		if _, err := k.After(time.Microsecond, fn); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.After(time.Microsecond, fn); err != nil {
			b.Fatal(err)
		}
		k.Step()
	}
}

// BenchmarkKernelCancel measures O(1) cancellation with tombstone
// compaction: each iteration schedules and cancels one event against a
// standing queue.
func BenchmarkKernelCancel(b *testing.B) {
	k := sim.NewKernel()
	fn := func() {}
	// A standing population of live events so cancels hit a realistic heap.
	for i := 0; i < 512; i++ {
		if _, err := k.After(time.Duration(i+1)*time.Second, fn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := k.After(time.Millisecond, fn)
		if err != nil {
			b.Fatal(err)
		}
		if !k.Cancel(id) {
			b.Fatal("cancel failed")
		}
	}
}

// BenchmarkMediumTransmit measures one full transmit+finish cycle on the
// dense bitset medium; steady state must be allocation-free (pooled
// transmissions, precomputed audiences).
func BenchmarkMediumTransmit(b *testing.B) {
	topo := topology.NewNetwork()
	for i := 0; i < 10; i++ {
		topo.AddNode(float64(i)*100, 0)
	}
	k := sim.NewKernel()
	m, err := mac.NewMedium(topo, k, 250)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.SetReceiver(1, func(mac.Delivery) {}); err != nil {
		b.Fatal(err)
	}
	frame := mac.Frame{From: 0, To: 1, Bytes: 1500}
	// Warm the transmission pool.
	for i := 0; i < 64; i++ {
		if err := m.Transmit(frame, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Transmit(frame, time.Millisecond); err != nil {
			b.Fatal(err)
		}
		k.Run()
	}
}

// BenchmarkDCFSaturation measures the full DCF data plane under contention:
// one saturated 10-sender star run per iteration.
func BenchmarkDCFSaturation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo := topology.NewNetwork()
		rx := topo.AddNode(0, 0)
		senders := make([]topology.NodeID, 10)
		for j := range senders {
			senders[j] = topo.AddNode(10+float64(j), 10)
		}
		k := sim.NewKernel()
		nw, err := dcf.New(dcf.Config{Seed: 17, QueueCap: 1 << 16}, topo, k, 500, nil)
		if err != nil {
			b.Fatal(err)
		}
		for fi, s := range senders {
			for j := 0; j < 100; j++ {
				if err := nw.Inject(&dcf.Packet{FlowID: fi, Seq: j,
					Route: []topology.NodeID{s, rx}, Bytes: 1500}); err != nil {
					b.Fatal(err)
				}
			}
		}
		k.RunUntil(500 * time.Millisecond)
	}
}

// BenchmarkCapacitySearch compares the galloping capacity search (with its
// pilot bracket and early-abort monitors) against the preserved linear
// reference scan on the chain6 topology, for both MACs. The two strategies
// return identical results (pinned by the differential suite); this
// benchmark tracks how much wall clock the gallop saves.
func BenchmarkCapacitySearch(b *testing.B) {
	for _, mac := range []string{"tdma", "dcf"} {
		for _, strat := range []struct {
			name   string
			search core.SearchStrategy
		}{{"gallop", core.SearchGalloping}, {"linear", core.SearchLinear}} {
			b.Run(mac+"/"+strat.name, func(b *testing.B) {
				topo, err := topology.Chain(6, 100)
				if err != nil {
					b.Fatal(err)
				}
				sys, err := core.NewSystem(topo)
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.CapacityConfig{
					MaxCalls: 40,
					Run:      core.RunConfig{Duration: 3 * time.Second, Seed: 11},
					Search:   strat.search,
				}
				var calls int
				for i := 0; i < b.N; i++ {
					var res *core.CapacityResult
					if mac == "tdma" {
						res, err = sys.VoIPCapacityTDMA(cfg)
					} else {
						res, err = sys.VoIPCapacityDCF(cfg)
					}
					if err != nil {
						b.Fatal(err)
					}
					calls = res.Calls
				}
				b.ReportMetric(float64(calls), "calls")
			})
		}
	}
}
