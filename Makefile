GO ?= go

.PHONY: all build test vet race check differential lpdebug examples obs-allocs scale-smoke admit-smoke class-smoke profile bench bench-full bench-json bench-compare clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The MILP worker pool, the Problem caches and the parallel experiment
# runner must stay race-clean.
race:
	$(GO) test -race ./...

# The overhauls are pinned to their reference implementations: slab kernel
# vs. heap kernel, dense bitset medium vs. map-based medium, parallel
# meshbench vs. sequential, bounded-variable simplex vs. the dense two-phase
# oracle, warm-started branch-and-bound vs. cold, incremental window
# mutation vs. fresh builds, analytic-screened capacity search vs. the
# linear reference scan, partitioned zone scheduling vs. the monolithic
# ILP (window within 10%, bit-identical at any worker count), admission
# engine verdicts vs. cold schedule.MinSlots re-plans — all under the race
# detector.
differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestWorkersByteIdentical|TestScreenedSearchMatchesLinear|TestGallopSearchWorkers|TestAnalyticSearchMatchesLinear|TestAnalyticVsSimulated' \
		./internal/sim ./internal/mac ./cmd/meshbench ./internal/core \
		./internal/lp ./internal/milp ./internal/schedule ./internal/partition \
		./internal/admit

# Re-run the solver packages with the lpdebug build tag: every simplex
# terminates through an invariant check (basis consistency, B^-1 B = I,
# primal feasibility, dual sign conditions).
lpdebug:
	$(GO) test -count=1 -tags lpdebug ./internal/lp ./internal/milp ./internal/schedule

# Build every example program and smoke-run the quickstart (the fastest
# end-to-end path through the public API). TestExamplesBuild covers the
# builds under plain `go test ./...` too.
examples:
	$(GO) build ./examples/...
	$(GO) test ./examples/ -run TestExamplesBuild -count=1
	$(GO) run ./examples/quickstart > /dev/null

# The observability layer must cost nothing when disabled: nil-sink counter,
# gauge, histogram and trace calls are pinned at 0 allocs/op (and the alloc
# test fails on any regression). The analytic screen rides the same budget:
# a steady-state closed-form probe must not allocate, or screening thousands
# of candidate call counts would feed the GC.
obs-allocs:
	$(GO) test ./internal/obs -run 'TestNilSinkZeroAllocs|TestEnabledSinkZeroAllocsSteadyState' -count=1
	$(GO) test ./internal/obs -run xxx -benchmem \
		-bench 'BenchmarkObsNilCounterInc|BenchmarkObsNilTraceEmit'
	$(GO) test ./internal/analytic -run TestPredictZeroAllocsSteadyState -count=1
	$(GO) test ./internal/analytic -run xxx -benchmem \
		-bench 'BenchmarkAnalyticScreen'

# A reduced city-scale R18 (200 nodes, 1000 offered flows) through the full
# partitioned pipeline — generate, admit, decompose, zone ILPs, stitch —
# under go vet and the race detector. Fast enough for every push; the full
# sweep lives in `meshbench -only R18`.
scale-smoke:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run TestScaleSmoke ./internal/experiments

# A reduced R19 (village grid + 200-node zoned city) through the full serving
# pipeline — workload generation, three-tier admission, release churn,
# compaction — plus a reduced R20 through the sharded path at workers 1 and
# 8 (per-zone locking, joint batches, concurrent dispatcher), all under go
# vet and the race detector. The full sweeps live in `meshbench -only R19`
# and `-only R20`.
admit-smoke:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run 'TestAdmitSmoke|TestShardSmoke' ./internal/experiments

# A reduced R21 (120-node zoned city, mixed UGS/rtPS/nrtPS/BE workload under
# overload) through the class-aware serving pipeline — class deadlines, the
# classed fastpath and solver caps, and preemptive admission with evictions —
# under go vet and the race detector. The full sweep lives in
# `meshbench -only R21`.
class-smoke:
	$(GO) vet ./...
	$(GO) test -race -count=1 -run TestClassSmoke ./internal/experiments

check: vet build race differential lpdebug examples obs-allocs admit-smoke class-smoke

# CPU+heap profile of the scheduler-bound experiments (see README
# "Performance" for reading the output).
profile:
	$(GO) run ./cmd/meshbench -only R7 -workers 1 \
		-cpuprofile cpu.prof -memprofile mem.prof
	$(GO) tool pprof -top -nodecount 15 cpu.prof

# Hot-path micro-benchmarks (kernel schedule/cancel, medium transmit, DCF
# saturation); the first three must report 0 allocs/op.
bench:
	$(GO) test -run xxx -benchmem . \
		-bench 'BenchmarkKernelAfterStep|BenchmarkKernelCancel|BenchmarkMediumTransmit|BenchmarkDCFSaturation'

bench-full:
	$(GO) test -bench=. -benchmem .

# Record the experiment metrics + wall clock as a dated JSON report
# (machine-readable perf trajectory; see README "Performance"). Single
# worker, so wall times measure the data plane, not the runner.
bench-json:
	$(GO) run ./cmd/meshbench -workers 1 -json BENCH_$$(date +%F).json

# Re-run the experiments and compare tables + wall clock against the newest
# committed BENCH_<date>.json: any table cell change (outside the
# wall-clock-dependent columns of R7, R18, R19, R20 and R21 — R19's
# time-budgeted verdict split, all of R20's serial-vs-sharded comparison and
# R21's per-class latency quantiles included) or a >20% wall-clock regression
# fails the target.
bench-compare:
	$(GO) run ./cmd/meshbench -workers 1 -json /tmp/bench-compare.json > /dev/null
	$(GO) run ./cmd/benchcompare $(lastword $(sort $(wildcard BENCH_*.json))) /tmp/bench-compare.json

clean:
	$(GO) clean ./...
