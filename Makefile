GO ?= go

.PHONY: all build test vet race check differential bench bench-full bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The MILP worker pool, the Problem caches and the parallel experiment
# runner must stay race-clean.
race:
	$(GO) test -race ./...

# The data-plane overhauls are pinned to their reference implementations:
# slab kernel vs. heap kernel, dense bitset medium vs. map-based medium,
# parallel meshbench vs. sequential — all under the race detector.
differential:
	$(GO) test -race -count=1 -run 'TestDifferential|TestWorkersByteIdentical' \
		./internal/sim ./internal/mac ./cmd/meshbench

check: vet build race differential

# Hot-path micro-benchmarks (kernel schedule/cancel, medium transmit, DCF
# saturation); the first three must report 0 allocs/op.
bench:
	$(GO) test -run xxx -benchmem . \
		-bench 'BenchmarkKernelAfterStep|BenchmarkKernelCancel|BenchmarkMediumTransmit|BenchmarkDCFSaturation'

bench-full:
	$(GO) test -bench=. -benchmem .

# Record the experiment metrics + wall clock as a dated JSON report
# (machine-readable perf trajectory; see README "Performance"). Single
# worker, so wall times measure the data plane, not the runner.
bench-json:
	$(GO) run ./cmd/meshbench -workers 1 -json BENCH_$$(date +%F).json

clean:
	$(GO) clean ./...
