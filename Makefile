GO ?= go

.PHONY: all build test vet race check bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The MILP worker pool and the Problem caches must stay race-clean.
race:
	$(GO) test -race ./...

check: vet build race

bench:
	$(GO) test -bench=. -benchmem .

# Record the experiment metrics + wall clock as a dated JSON report
# (machine-readable perf trajectory; see README "Performance").
bench-json:
	$(GO) run ./cmd/meshbench -json BENCH_$$(date +%F).json

clean:
	$(GO) clean ./...
